/**
 * @file
 * A fixed-size worker pool for simulation sweeps.
 *
 * Deliberately simple: one shared FIFO queue, no work stealing, no
 * futures.  Sweep jobs are coarse (one whole VmSim run each), so queue
 * contention is negligible and FIFO dispatch keeps the scheduling
 * easy to reason about.  Determinism never depends on this class:
 * every job must be a pure function of its inputs (see
 * exec/sweep.hh's seeding contract), so the pool only decides *when*
 * a job runs, never *what* it computes.
 */

#ifndef SHARCH_EXEC_THREAD_POOL_HH
#define SHARCH_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sharch::exec {

/** Fixed pool of worker threads draining one FIFO job queue. */
class ThreadPool
{
  public:
    /**
     * Start @p num_threads workers.  A count of 1 still runs jobs on
     * the (single) worker thread, so the serial and parallel paths
     * exercise identical code.
     */
    explicit ThreadPool(unsigned num_threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p job for execution on some worker. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished executing. */
    void wait();

    /**
     * Exceptions that escaped jobs, in completion order, transferring
     * ownership (the pool's list is left empty).  A job that throws
     * never kills its worker: the exception is captured here and the
     * worker moves on to the next job, so one bad sweep point cannot
     * terminate the process (std::terminate) or starve the queue.
     * Call after wait() to learn whether the batch was clean.
     */
    std::vector<std::exception_ptr> takeExceptions();

    /** Number of captured job exceptions not yet taken. */
    std::size_t pendingExceptions();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::exception_ptr> errors_;
    std::size_t inFlight_ = 0; //!< queued + currently executing
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace sharch::exec

#endif // SHARCH_EXEC_THREAD_POOL_HH
