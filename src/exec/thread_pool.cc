#include "exec/thread_pool.hh"

#include "common/logging.hh"

namespace sharch::exec {

ThreadPool::ThreadPool(unsigned num_threads)
{
    SHARCH_ASSERT(num_threads > 0, "thread pool needs >= 1 worker");
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        SHARCH_ASSERT(!stopping_, "submit() on a stopping pool");
        queue_.push_back(std::move(job));
        ++inFlight_;
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

std::vector<std::exception_ptr>
ThreadPool::takeExceptions()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::exception_ptr> out;
    out.swap(errors_);
    return out;
}

std::size_t
ThreadPool::pendingExceptions()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return errors_.size();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and nothing left to run
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        // A throw must not unwind the worker thread (that would call
        // std::terminate and strand the queue); park it for the
        // submitter instead and keep draining.
        std::exception_ptr error;
        try {
            job();
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error)
                errors_.push_back(std::move(error));
            --inFlight_;
            if (inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace sharch::exec
