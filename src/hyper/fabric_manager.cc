#include "hyper/fabric_manager.hh"

#include <algorithm>
#include <atomic>
#include <limits>

#include "common/logging.hh"
#include "noc/placement.hh"
#include "obs/obs.hh"

namespace sharch {

#if SHARCH_OBS
namespace {

/** Registered once per process; per-thread shards keep bumps cheap. */
struct FabricMetrics
{
    obs::MetricId allocs =
        obs::MetricsRegistry::instance().addCounter("fabric.allocs");
    obs::MetricId releases =
        obs::MetricsRegistry::instance().addCounter("fabric.releases");
    obs::MetricId degrades =
        obs::MetricsRegistry::instance().addCounter("fabric.degrades");
    obs::MetricId defragMoves =
        obs::MetricsRegistry::instance().addCounter(
            "fabric.defrag_moves");
    obs::MetricId freeSlices =
        obs::MetricsRegistry::instance().addGauge(
            "fabric.free_slices");
    obs::MetricId freeBanks =
        obs::MetricsRegistry::instance().addGauge("fabric.free_banks");
};

FabricMetrics &
fabricMetrics()
{
    static FabricMetrics m;
    return m;
}

/**
 * The fabric has no clock of its own (the caller's fault schedule
 * does): trace instants tick a process-wide decision counter, which
 * keeps every hypervisor decision ordered on one timeline.
 */
std::uint64_t
nextFabricSeq()
{
    static std::atomic<std::uint64_t> seq{0};
    return seq.fetch_add(1, std::memory_order_relaxed);
}

/** One instant event on the fabric timeline. */
void
recordFabric(const char *name, std::uint64_t arg, const char *arg_name)
{
    const std::uint64_t at = nextFabricSeq();
    obs::Tracer::instance().record(
        {name, "fabric", at, at, obs::kPidFabric, 0, arg, arg_name});
}

/** Refresh the free-capacity gauges after a mutation. */
void
setFabricGauges(unsigned free_slices, unsigned free_banks)
{
    auto &reg = obs::MetricsRegistry::instance();
    const FabricMetrics &m = fabricMetrics();
    reg.set(m.freeSlices, free_slices);
    reg.set(m.freeBanks, free_banks);
}

} // namespace
#endif

const char *
degradeKindName(DegradeKind kind)
{
    switch (kind) {
      case DegradeKind::Replaced:
        return "replaced";
      case DegradeKind::Shrunk:
        return "shrunk";
      case DegradeKind::Evicted:
        return "evicted";
      case DegradeKind::BankReplaced:
        return "bank-replaced";
      case DegradeKind::BankLost:
        return "bank-lost";
    }
    return "?";
}

FabricManager::FabricManager(int width, int height)
    : width_(width), height_(height)
{
    SHARCH_ASSERT(width >= 1 && height >= 2,
                  "chip needs at least one Slice row and one bank row");
    const int slice_rows = (height + 1) / 2;
    const int bank_rows = height / 2;
    sliceOwner_.assign(slice_rows,
                       std::vector<AllocationId>(width, kFree));
    bankOwner_.assign(bank_rows,
                      std::vector<AllocationId>(width, kFree));
    sliceBad_.assign(slice_rows, std::vector<bool>(width, false));
    bankBad_.assign(bank_rows, std::vector<bool>(width, false));
    linkBad_.assign(slice_rows,
                    std::vector<bool>(width > 1 ? width - 1 : 0,
                                      false));
}

unsigned
FabricManager::totalSlices() const
{
    return static_cast<unsigned>(sliceOwner_.size()) * width_;
}

unsigned
FabricManager::totalBanks() const
{
    return static_cast<unsigned>(bankOwner_.size()) * width_;
}

unsigned
FabricManager::freeSlices() const
{
    unsigned n = 0;
    for (std::size_t r = 0; r < sliceOwner_.size(); ++r)
        for (int c = 0; c < width_; ++c)
            n += sliceUsable(static_cast<int>(r), c);
    return n;
}

unsigned
FabricManager::freeBanks() const
{
    unsigned n = 0;
    for (std::size_t r = 0; r < bankOwner_.size(); ++r)
        for (int c = 0; c < width_; ++c)
            n += bankOwner_[r][c] == kFree && !bankBad_[r][c];
    return n;
}

std::optional<SliceRun>
FabricManager::findRun(unsigned count) const
{
    if (count == 0 || count > static_cast<unsigned>(width_))
        return std::nullopt;
    for (std::size_t r = 0; r < sliceOwner_.size(); ++r) {
        unsigned run = 0;
        for (int c = 0; c < width_; ++c) {
            if (!sliceUsable(static_cast<int>(r), c))
                run = 0;
            else if (run > 0 && !linkIntact(static_cast<int>(r), c))
                run = 1; // a broken link ends the contiguous run
            else
                ++run;
            if (run >= count) {
                return SliceRun{static_cast<int>(r) * 2,
                                c - static_cast<int>(count) + 1,
                                count};
            }
        }
    }
    return std::nullopt;
}

std::optional<SliceRun>
FabricManager::bestRunFor(unsigned count,
                          const std::vector<Coord> &banks) const
{
    if (count == 0 || count > static_cast<unsigned>(width_))
        return std::nullopt;
    // Enumerate every healthy free window and keep the one with the
    // least mean Slice-to-bank distance (noc/placement's cost); ties
    // keep the first (row, col), so the choice is deterministic.
    std::optional<SliceRun> best;
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < sliceOwner_.size(); ++r) {
        unsigned run = 0;
        for (int c = 0; c < width_; ++c) {
            if (!sliceUsable(static_cast<int>(r), c))
                run = 0;
            else if (run > 0 && !linkIntact(static_cast<int>(r), c))
                run = 1;
            else
                ++run;
            if (run < count)
                continue;
            const SliceRun cand{static_cast<int>(r) * 2,
                                c - static_cast<int>(count) + 1,
                                count};
            std::vector<Coord> cells;
            cells.reserve(count);
            for (unsigned i = 0; i < count; ++i) {
                cells.push_back(Coord{cand.col + static_cast<int>(i),
                                      cand.row});
            }
            const double cost = meanDistanceToBanks(cells, banks);
            if (cost < best_cost) {
                best_cost = cost;
                best = cand;
            }
        }
    }
    return best;
}

void
FabricManager::claim(const SliceRun &run, AllocationId id)
{
    auto &row = sliceOwner_[sliceRowIndex(run.row)];
    for (unsigned i = 0; i < run.count; ++i) {
        SHARCH_ASSERT(row[run.col + i] == kFree, "double allocation");
        row[run.col + i] = id;
    }
}

void
FabricManager::unclaim(const SliceRun &run)
{
    auto &row = sliceOwner_[sliceRowIndex(run.row)];
    for (unsigned i = 0; i < run.count; ++i)
        row[run.col + i] = kFree;
}

std::vector<Coord>
FabricManager::takeBanks(unsigned count, const SliceRun &near,
                         AllocationId id)
{
    // Collect free banks sorted by distance to the run's center.
    const Coord center{near.col + static_cast<int>(near.count) / 2,
                       near.row};
    std::vector<Coord> free;
    for (std::size_t r = 0; r < bankOwner_.size(); ++r) {
        for (int c = 0; c < width_; ++c) {
            if (bankOwner_[r][c] == kFree && !bankBad_[r][c])
                free.push_back(
                    Coord{c, static_cast<int>(r) * 2 + 1});
        }
    }
    std::sort(free.begin(), free.end(), [&](Coord a, Coord b) {
        const unsigned da = manhattanDistance(a, center);
        const unsigned db = manhattanDistance(b, center);
        if (da != db)
            return da < db;
        return a.y != b.y ? a.y < b.y : a.x < b.x;
    });
    SHARCH_ASSERT(free.size() >= count, "caller checked capacity");
    free.resize(count);
    for (const Coord &b : free)
        bankOwner_[bankRowIndex(b.y)][b.x] = id;
    return free;
}

std::optional<AllocationId>
FabricManager::allocate(unsigned slices, unsigned banks)
{
    if (slices == 0 || banks > freeBanks()) {
#if SHARCH_OBS
        if (obs::enabled())
            recordFabric("place_fail", slices, "slices");
#endif
        return std::nullopt;
    }
    const auto run = findRun(slices);
    if (!run) {
#if SHARCH_OBS
        if (obs::enabled())
            recordFabric("place_fail", slices, "slices");
#endif
        return std::nullopt;
    }

    const AllocationId id = next_++;
    claim(*run, id);
    FabricAllocation alloc;
    alloc.id = id;
    alloc.slices = *run;
    alloc.banks = takeBanks(banks, *run, id);
    live_.emplace(id, std::move(alloc));
#if SHARCH_OBS
    if (obs::enabled()) {
        obs::MetricsRegistry::instance().add(fabricMetrics().allocs);
        recordFabric("place", id, "vcore");
        setFabricGauges(freeSlices(), freeBanks());
    }
#endif
    return id;
}

bool
FabricManager::release(AllocationId id)
{
    auto it = live_.find(id);
    if (it == live_.end())
        return false;
    unclaim(it->second.slices);
    for (const Coord &b : it->second.banks)
        bankOwner_[bankRowIndex(b.y)][b.x] = kFree;
    live_.erase(it);
#if SHARCH_OBS
    if (obs::enabled()) {
        obs::MetricsRegistry::instance().add(fabricMetrics().releases);
        recordFabric("release", id, "vcore");
        setFabricGauges(freeSlices(), freeBanks());
    }
#endif
    return true;
}

const FabricAllocation *
FabricManager::find(AllocationId id) const
{
    auto it = live_.find(id);
    return it == live_.end() ? nullptr : &it->second;
}

std::vector<FabricAllocation>
FabricManager::allocations() const
{
    std::vector<FabricAllocation> out;
    out.reserve(live_.size());
    for (const auto &[id, alloc] : live_)
        out.push_back(alloc);
    return out;
}

std::optional<Cycles>
FabricManager::reshape(AllocationId id, unsigned slices,
                       unsigned banks)
{
    auto it = live_.find(id);
    if (it == live_.end() || slices == 0 ||
        slices > static_cast<unsigned>(width_)) {
        return std::nullopt;
    }
    FabricAllocation &alloc = it->second;
    const VCoreShape before = alloc.shape();

    // --- Slices: shrink from the right, or grow rightwards (then
    //     leftwards) into free neighbours. ---
    SliceRun run = alloc.slices;
    auto &row = sliceOwner_[sliceRowIndex(run.row)];
    if (slices < run.count) {
        for (unsigned i = slices; i < run.count; ++i)
            row[run.col + i] = kFree;
        run.count = slices;
    } else if (slices > run.count) {
        const int r = sliceRowIndex(run.row);
        unsigned need = slices - run.count;
        unsigned grow_right = 0, grow_left = 0;
        while (grow_right < need &&
               run.col + static_cast<int>(run.count + grow_right) <
                   width_ &&
               sliceUsable(r, run.col + run.count + grow_right) &&
               linkIntact(r, run.col + run.count + grow_right)) {
            ++grow_right;
        }
        while (grow_right + grow_left < need && run.col > 0 &&
               run.col - static_cast<int>(grow_left) - 1 >= 0 &&
               sliceUsable(r, run.col - grow_left - 1) &&
               linkIntact(r, run.col - grow_left)) {
            ++grow_left;
        }
        if (grow_right + grow_left < need)
            return std::nullopt; // caller should defragment
        for (unsigned i = 0; i < grow_right; ++i)
            row[run.col + run.count + i] = id;
        for (unsigned i = 0; i < grow_left; ++i)
            row[run.col - 1 - static_cast<int>(i)] = id;
        run.col -= static_cast<int>(grow_left);
        run.count = slices;
    }
    alloc.slices = run;

    // --- Banks: release surplus (farthest first) or claim more. ---
    if (banks < alloc.banks.size()) {
        while (alloc.banks.size() > banks) {
            const Coord b = alloc.banks.back();
            alloc.banks.pop_back();
            bankOwner_[bankRowIndex(b.y)][b.x] = kFree;
        }
    } else if (banks > alloc.banks.size()) {
        const unsigned need =
            banks - static_cast<unsigned>(alloc.banks.size());
        if (need > freeBanks()) {
            // Roll back is unnecessary: Slice changes remain valid;
            // report failure so the caller can retry.
            return std::nullopt;
        }
        const auto extra = takeBanks(need, alloc.slices, id);
        alloc.banks.insert(alloc.banks.end(), extra.begin(),
                           extra.end());
    }

    return reconfig_.transitionCost(before, alloc.shape());
}

double
FabricManager::sliceUtilization() const
{
    return 1.0 - static_cast<double>(freeSlices()) / totalSlices();
}

double
FabricManager::bankUtilization() const
{
    if (totalBanks() == 0)
        return 0.0;
    return 1.0 - static_cast<double>(freeBanks()) / totalBanks();
}

unsigned
FabricManager::largestFreeRun() const
{
    unsigned best = 0;
    for (std::size_t r = 0; r < sliceOwner_.size(); ++r) {
        unsigned run = 0;
        for (int c = 0; c < width_; ++c) {
            if (!sliceUsable(static_cast<int>(r), c))
                run = 0;
            else if (run > 0 && !linkIntact(static_cast<int>(r), c))
                run = 1;
            else
                ++run;
            best = std::max(best, run);
        }
    }
    return best;
}

double
FabricManager::fragmentation() const
{
    const unsigned free = freeSlices();
    if (free == 0)
        return 1.0;
    return 1.0 - static_cast<double>(largestFreeRun()) / free;
}

std::vector<DefragMove>
FabricManager::defragment()
{
    std::vector<DefragMove> moves;

    // Sort live runs by (row, col) and repack them left to right, row
    // by row -- every Slice is interchangeable, so sliding a run is
    // a Register Flush plus interconnect reprogramming (section 3.8).
    std::vector<AllocationId> order;
    for (const auto &[id, alloc] : live_)
        order.push_back(id);
    std::sort(order.begin(), order.end(), [&](AllocationId a,
                                              AllocationId b) {
        const FabricAllocation &fa = live_.at(a);
        const FabricAllocation &fb = live_.at(b);
        if (fa.slices.row != fb.slices.row)
            return fa.slices.row < fb.slices.row;
        return fa.slices.col < fb.slices.col;
    });

    // Greedy repack: each run slides to the leftmost healthy free
    // window over the rows in order.  On a fault-free chip this is
    // exactly the historical cursor-per-row compaction (every placed
    // run packs against the previous one); faulty tiles and broken
    // links simply make some windows infeasible.  A run's own cells
    // are released before the search, so staying put is always an
    // option and the claim below can never collide.
    for (AllocationId id : order) {
        FabricAllocation &alloc = live_.at(id);
        const SliceRun from = alloc.slices;
        unclaim(from);
        const auto to = findRun(from.count);
        SHARCH_ASSERT(to.has_value(),
                      "a live run must fit at its own position");
        claim(*to, id);
        alloc.slices = *to;
        if (to->row == from.row && to->col == from.col)
            continue; // already in place
        DefragMove mv;
        mv.id = id;
        mv.from = from;
        mv.to = *to;
        // Register Flush per move (Slice-only reconfiguration).
        mv.cost = reconfig_.transitionCost(
            VCoreShape{0, from.count},
            VCoreShape{0, from.count + 1});
        moves.push_back(mv);
#if SHARCH_OBS
        if (obs::enabled()) {
            obs::MetricsRegistry::instance().add(
                fabricMetrics().defragMoves);
            recordFabric("defrag_move", id, "vcore");
        }
#endif
    }
    return moves;
}

std::vector<DegradeAction>
FabricManager::markFaulty(fault::FaultKind kind, Coord tile)
{
    std::vector<DegradeAction> actions;
    switch (kind) {
      case fault::FaultKind::Slice: {
        SHARCH_ASSERT(isSliceRow(tile.y) && tile.y < height_ &&
                          tile.x >= 0 && tile.x < width_,
                      "slice fault off-chip");
        const int r = sliceRowIndex(tile.y);
        if (sliceBad_[r][tile.x])
            return actions;
        sliceBad_[r][tile.x] = true;
        const AllocationId owner = sliceOwner_[r][tile.x];
        if (owner != kFree)
            actions.push_back(degrade(owner));
        break;
      }
      case fault::FaultKind::Bank: {
        SHARCH_ASSERT(!isSliceRow(tile.y) && tile.y < height_ &&
                          tile.x >= 0 && tile.x < width_,
                      "bank fault off-chip");
        const int r = bankRowIndex(tile.y);
        if (bankBad_[r][tile.x])
            return actions;
        bankBad_[r][tile.x] = true;
        const AllocationId owner = bankOwner_[r][tile.x];
        if (owner == kFree)
            break;
        bankOwner_[r][tile.x] = kFree; // dead bank leaves the pool
        FabricAllocation &alloc = live_.at(owner);
        const VCoreShape before = alloc.shape();
        alloc.banks.erase(std::find(alloc.banks.begin(),
                                    alloc.banks.end(), tile));
        DegradeAction act;
        act.id = owner;
        act.from = act.to = alloc.slices;
        // Losing a bank changes the survivor set either way: L2
        // flush (surviving dirty state must leave the dead bank's
        // index range).
        act.cost = reconfig_.transitionCost(before, alloc.shape());
        if (freeBanks() >= 1) {
            const auto extra = takeBanks(1, alloc.slices, owner);
            alloc.banks.insert(alloc.banks.end(), extra.begin(),
                               extra.end());
            act.kind = DegradeKind::BankReplaced;
        } else {
            act.kind = DegradeKind::BankLost;
            act.banksLost = 1;
        }
        actions.push_back(act);
        break;
      }
      case fault::FaultKind::Link: {
        SHARCH_ASSERT(isSliceRow(tile.y) && tile.y < height_ &&
                          tile.x >= 0 && tile.x < width_ - 1,
                      "link fault off-chip");
        const int r = sliceRowIndex(tile.y);
        if (linkBad_[r][tile.x])
            return actions;
        linkBad_[r][tile.x] = true;
        // Contiguity is broken only for a run spanning the link.
        const AllocationId left = sliceOwner_[r][tile.x];
        if (left != kFree && left == sliceOwner_[r][tile.x + 1])
            actions.push_back(degrade(left));
        break;
      }
    }
#if SHARCH_OBS
    if (obs::enabled()) {
        recordFabric("fault", static_cast<std::uint64_t>(
                                  tile.y) * width_ + tile.x,
                     "tile");
        auto &reg = obs::MetricsRegistry::instance();
        for (const DegradeAction &a : actions) {
            reg.add(fabricMetrics().degrades);
            recordFabric(degradeKindName(a.kind), a.id, "vcore");
        }
        setFabricGauges(freeSlices(), freeBanks());
    }
#endif
    return actions;
}

DegradeAction
FabricManager::degrade(AllocationId id)
{
    FabricAllocation &alloc = live_.at(id);
    const VCoreShape before = alloc.shape();
    const SliceRun from = alloc.slices;
    DegradeAction act;
    act.id = id;
    act.from = from;

    // The current position is no longer a healthy contiguous run;
    // release it so the search may reuse its surviving cells.
    unclaim(from);

    // 1. Re-place: a healthy run of the same length, nearest to the
    //    VCore's banks.
    if (const auto to = bestRunFor(from.count, alloc.banks)) {
        claim(*to, id);
        alloc.slices = *to;
        act.kind = DegradeKind::Replaced;
        act.to = *to;
        // The move is a Slice-only reconfiguration: Register Flush.
        act.cost = reconfig_.transitionCost(
            VCoreShape{0, from.count}, VCoreShape{0, from.count + 1});
        return act;
    }

    // 2. Shrink: the paper's dynamic resizing, driven by the fault --
    //    the longest healthy run still available.
    for (unsigned k = from.count - 1; k >= 1; --k) {
        const auto to = bestRunFor(k, alloc.banks);
        if (!to)
            continue;
        claim(*to, id);
        alloc.slices = *to;
        act.kind = DegradeKind::Shrunk;
        act.to = *to;
        act.slicesLost = from.count - k;
        act.cost = reconfig_.transitionCost(before, alloc.shape());
        return act;
    }

    // 3. Evict: not even one Slice fits; the VCore's resources are
    //    freed and its state flushed (L2 flush when it held banks,
    //    Register Flush otherwise).
    for (const Coord &b : alloc.banks)
        bankOwner_[bankRowIndex(b.y)][b.x] = kFree;
    act.kind = DegradeKind::Evicted;
    act.to = SliceRun{from.row, from.col, 0};
    act.slicesLost = from.count;
    act.banksLost = static_cast<unsigned>(alloc.banks.size());
    act.cost = before.banks > 0
                   ? reconfig_.transitionCost(
                         before, VCoreShape{0, before.slices})
                   : reconfig_.transitionCost(VCoreShape{0, 2},
                                              VCoreShape{0, 1});
    live_.erase(id);
    return act;
}

bool
FabricManager::heal(fault::FaultKind kind, Coord tile)
{
    switch (kind) {
      case fault::FaultKind::Slice: {
        if (!isSliceRow(tile.y) || tile.y >= height_ || tile.x < 0 ||
            tile.x >= width_) {
            return false;
        }
        auto cell = sliceBad_[sliceRowIndex(tile.y)].begin() + tile.x;
        const bool was = *cell;
        *cell = false;
        return was;
      }
      case fault::FaultKind::Bank: {
        if (isSliceRow(tile.y) || tile.y >= height_ || tile.x < 0 ||
            tile.x >= width_) {
            return false;
        }
        auto cell = bankBad_[bankRowIndex(tile.y)].begin() + tile.x;
        const bool was = *cell;
        *cell = false;
        return was;
      }
      case fault::FaultKind::Link: {
        if (!isSliceRow(tile.y) || tile.y >= height_ || tile.x < 0 ||
            tile.x >= width_ - 1) {
            return false;
        }
        auto cell = linkBad_[sliceRowIndex(tile.y)].begin() + tile.x;
        const bool was = *cell;
        *cell = false;
        return was;
      }
    }
    return false;
}

FabricSnapshot
FabricManager::snapshot() const
{
    FabricSnapshot snap;
    snap.width = width_;
    snap.height = height_;
    snap.next = next_;
    for (const auto &[id, alloc] : live_)
        snap.allocations.push_back(alloc);
    for (std::size_t r = 0; r < sliceBad_.size(); ++r)
        for (int c = 0; c < width_; ++c)
            if (sliceBad_[r][c])
                snap.faultySliceTiles.push_back(
                    Coord{c, static_cast<int>(r) * 2});
    for (std::size_t r = 0; r < bankBad_.size(); ++r)
        for (int c = 0; c < width_; ++c)
            if (bankBad_[r][c])
                snap.faultyBankTiles.push_back(
                    Coord{c, static_cast<int>(r) * 2 + 1});
    for (std::size_t r = 0; r < linkBad_.size(); ++r)
        for (int c = 0; c + 1 < width_; ++c)
            if (linkBad_[r][c])
                snap.faultyLinkTiles.push_back(
                    Coord{c, static_cast<int>(r) * 2});
    return snap;
}

bool
FabricManager::restore(const FabricSnapshot &snap, std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    if (snap.width < 1 || snap.height < 2) {
        return fail("fabric geometry " + std::to_string(snap.width) +
                    "x" + std::to_string(snap.height) +
                    " is invalid (want width >= 1, height >= 2)");
    }

    // Build the replacement state on the side; *this is only
    // overwritten once every record has validated.
    FabricManager next(snap.width, snap.height);
    next.next_ = snap.next;

    for (const Coord &t : snap.faultySliceTiles) {
        if (!next.isSliceRow(t.y) || t.y >= snap.height || t.x < 0 ||
            t.x >= snap.width) {
            return fail("faulty Slice tile (" + std::to_string(t.x) +
                        "," + std::to_string(t.y) + ") is off-chip");
        }
        next.sliceBad_[next.sliceRowIndex(t.y)][t.x] = true;
    }
    for (const Coord &t : snap.faultyBankTiles) {
        if (next.isSliceRow(t.y) || t.y >= snap.height || t.x < 0 ||
            t.x >= snap.width) {
            return fail("faulty bank tile (" + std::to_string(t.x) +
                        "," + std::to_string(t.y) + ") is off-chip");
        }
        next.bankBad_[next.bankRowIndex(t.y)][t.x] = true;
    }
    for (const Coord &t : snap.faultyLinkTiles) {
        if (!next.isSliceRow(t.y) || t.y >= snap.height || t.x < 0 ||
            t.x >= snap.width - 1) {
            return fail("faulty link (" + std::to_string(t.x) + "," +
                        std::to_string(t.y) + ") is off-chip");
        }
        next.linkBad_[next.sliceRowIndex(t.y)][t.x] = true;
    }

    for (const FabricAllocation &alloc : snap.allocations) {
        const std::string where =
            "allocation " + std::to_string(alloc.id);
        if (alloc.id == kFree || alloc.id >= snap.next)
            return fail(where + ": id must be in 1.." +
                        std::to_string(snap.next - 1) +
                        " (below the id counter)");
        if (next.live_.count(alloc.id))
            return fail(where + ": duplicate id");
        const SliceRun &run = alloc.slices;
        if (!next.isSliceRow(run.row) || run.row >= snap.height ||
            run.col < 0 || run.count == 0 ||
            run.col + static_cast<int>(run.count) > snap.width) {
            return fail(where + ": Slice run is off-chip");
        }
        const int r = next.sliceRowIndex(run.row);
        for (unsigned i = 0; i < run.count; ++i) {
            if (next.sliceOwner_[r][run.col + i] != kFree)
                return fail(where + ": Slice (" +
                            std::to_string(run.col +
                                           static_cast<int>(i)) +
                            "," + std::to_string(run.row) +
                            ") is claimed twice");
            next.sliceOwner_[r][run.col + i] = alloc.id;
        }
        for (const Coord &b : alloc.banks) {
            if (next.isSliceRow(b.y) || b.y >= snap.height ||
                b.x < 0 || b.x >= snap.width) {
                return fail(where + ": bank (" +
                            std::to_string(b.x) + "," +
                            std::to_string(b.y) + ") is off-chip");
            }
            AllocationId &owner =
                next.bankOwner_[next.bankRowIndex(b.y)][b.x];
            if (owner != kFree)
                return fail(where + ": bank (" +
                            std::to_string(b.x) + "," +
                            std::to_string(b.y) +
                            ") is claimed twice");
            owner = alloc.id;
        }
        next.live_.emplace(alloc.id, alloc);
    }

    *this = std::move(next);
    return true;
}

std::vector<DegradeAction>
FabricManager::apply(const fault::FaultEvent &event)
{
    if (event.heal) {
        const bool healed = heal(event.kind, event.tile);
#if SHARCH_OBS
        if (healed && obs::enabled()) {
            recordFabric("heal", static_cast<std::uint64_t>(
                                     event.tile.y) * width_ +
                                     event.tile.x,
                         "tile");
            setFabricGauges(freeSlices(), freeBanks());
        }
#else
        (void)healed;
#endif
        return {};
    }
    return markFaulty(event.kind, event.tile);
}

bool
FabricManager::isFaulty(fault::FaultKind kind, Coord tile) const
{
    switch (kind) {
      case fault::FaultKind::Slice:
        return isSliceRow(tile.y) && tile.y < height_ && tile.x >= 0 &&
               tile.x < width_ &&
               sliceBad_[sliceRowIndex(tile.y)][tile.x];
      case fault::FaultKind::Bank:
        return !isSliceRow(tile.y) && tile.y < height_ &&
               tile.x >= 0 && tile.x < width_ &&
               bankBad_[bankRowIndex(tile.y)][tile.x];
      case fault::FaultKind::Link:
        return isSliceRow(tile.y) && tile.y < height_ && tile.x >= 0 &&
               tile.x < width_ - 1 &&
               linkBad_[sliceRowIndex(tile.y)][tile.x];
    }
    return false;
}

unsigned
FabricManager::faultySlices() const
{
    unsigned n = 0;
    for (const auto &row : sliceBad_)
        for (bool bad : row)
            n += bad;
    return n;
}

unsigned
FabricManager::faultyBanks() const
{
    unsigned n = 0;
    for (const auto &row : bankBad_)
        for (bool bad : row)
            n += bad;
    return n;
}

bool
FabricManager::checkConsistency(std::string *error) const
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = "fabric: " + what;
        return false;
    };
    auto cell = [](int x, int y) {
        return "(" + std::to_string(x) + "," + std::to_string(y) +
               ")";
    };

    // Rebuild the owner grids from the allocation book; any cell
    // where the rebuilt grid and the live grid disagree is a stale
    // or phantom claim.
    std::vector<std::vector<AllocationId>> slices(
        sliceOwner_.size(), std::vector<AllocationId>(width_, kFree));
    std::vector<std::vector<AllocationId>> banks(
        bankOwner_.size(), std::vector<AllocationId>(width_, kFree));
    for (const auto &[id, alloc] : live_) {
        const std::string where = "allocation " + std::to_string(id);
        if (id == kFree || id >= next_)
            return fail(where + ": id outside 1.." +
                        std::to_string(next_ - 1));
        if (id != alloc.id)
            return fail(where + ": book key != allocation id " +
                        std::to_string(alloc.id));
        const SliceRun &run = alloc.slices;
        if (!isSliceRow(run.row) || run.row >= height_ ||
            run.col < 0 || run.count == 0 ||
            run.col + static_cast<int>(run.count) > width_) {
            return fail(where + ": Slice run is off-chip");
        }
        const int r = sliceRowIndex(run.row);
        for (unsigned i = 0; i < run.count; ++i) {
            const int c = run.col + static_cast<int>(i);
            if (sliceBad_[r][c])
                return fail(where + ": owns faulty Slice " +
                            cell(c, run.row));
            if (i > 0 && !linkIntact(r, c))
                return fail(where + ": Slice run spans the broken "
                            "link at " + cell(c - 1, run.row));
            if (slices[r][c] != kFree)
                return fail(where + ": Slice " + cell(c, run.row) +
                            " also owned by allocation " +
                            std::to_string(slices[r][c]));
            slices[r][c] = id;
        }
        for (const Coord &b : alloc.banks) {
            if (isSliceRow(b.y) || b.y >= height_ || b.x < 0 ||
                b.x >= width_) {
                return fail(where + ": bank " + cell(b.x, b.y) +
                            " is off-chip");
            }
            const int br = bankRowIndex(b.y);
            if (bankBad_[br][b.x])
                return fail(where + ": owns faulty bank " +
                            cell(b.x, b.y));
            if (banks[br][b.x] != kFree)
                return fail(where + ": bank " + cell(b.x, b.y) +
                            " also owned by allocation " +
                            std::to_string(banks[br][b.x]));
            banks[br][b.x] = id;
        }
    }
    for (std::size_t r = 0; r < sliceOwner_.size(); ++r) {
        for (int c = 0; c < width_; ++c) {
            if (sliceOwner_[r][c] != slices[r][c])
                return fail("Slice grid " +
                            cell(c, static_cast<int>(r) * 2) +
                            " says owner " +
                            std::to_string(sliceOwner_[r][c]) +
                            " but the allocation book says " +
                            std::to_string(slices[r][c]));
        }
    }
    for (std::size_t r = 0; r < bankOwner_.size(); ++r) {
        for (int c = 0; c < width_; ++c) {
            if (bankOwner_[r][c] != banks[r][c])
                return fail("bank grid " +
                            cell(c, static_cast<int>(r) * 2 + 1) +
                            " says owner " +
                            std::to_string(bankOwner_[r][c]) +
                            " but the allocation book says " +
                            std::to_string(banks[r][c]));
        }
    }
    return true;
}

} // namespace sharch
