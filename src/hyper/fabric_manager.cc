#include "hyper/fabric_manager.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sharch {

FabricManager::FabricManager(int width, int height)
    : width_(width), height_(height)
{
    SHARCH_ASSERT(width >= 1 && height >= 2,
                  "chip needs at least one Slice row and one bank row");
    const int slice_rows = (height + 1) / 2;
    const int bank_rows = height / 2;
    sliceOwner_.assign(slice_rows,
                       std::vector<AllocationId>(width, kFree));
    bankOwner_.assign(bank_rows,
                      std::vector<AllocationId>(width, kFree));
}

unsigned
FabricManager::totalSlices() const
{
    return static_cast<unsigned>(sliceOwner_.size()) * width_;
}

unsigned
FabricManager::totalBanks() const
{
    return static_cast<unsigned>(bankOwner_.size()) * width_;
}

unsigned
FabricManager::freeSlices() const
{
    unsigned n = 0;
    for (const auto &row : sliceOwner_)
        for (AllocationId owner : row)
            n += owner == kFree;
    return n;
}

unsigned
FabricManager::freeBanks() const
{
    unsigned n = 0;
    for (const auto &row : bankOwner_)
        for (AllocationId owner : row)
            n += owner == kFree;
    return n;
}

std::optional<SliceRun>
FabricManager::findRun(unsigned count) const
{
    if (count == 0 || count > static_cast<unsigned>(width_))
        return std::nullopt;
    for (std::size_t r = 0; r < sliceOwner_.size(); ++r) {
        unsigned run = 0;
        for (int c = 0; c < width_; ++c) {
            run = sliceOwner_[r][c] == kFree ? run + 1 : 0;
            if (run >= count) {
                return SliceRun{static_cast<int>(r) * 2,
                                c - static_cast<int>(count) + 1,
                                count};
            }
        }
    }
    return std::nullopt;
}

void
FabricManager::claim(const SliceRun &run, AllocationId id)
{
    auto &row = sliceOwner_[sliceRowIndex(run.row)];
    for (unsigned i = 0; i < run.count; ++i) {
        SHARCH_ASSERT(row[run.col + i] == kFree, "double allocation");
        row[run.col + i] = id;
    }
}

void
FabricManager::unclaim(const SliceRun &run)
{
    auto &row = sliceOwner_[sliceRowIndex(run.row)];
    for (unsigned i = 0; i < run.count; ++i)
        row[run.col + i] = kFree;
}

std::vector<Coord>
FabricManager::takeBanks(unsigned count, const SliceRun &near,
                         AllocationId id)
{
    // Collect free banks sorted by distance to the run's center.
    const Coord center{near.col + static_cast<int>(near.count) / 2,
                       near.row};
    std::vector<Coord> free;
    for (std::size_t r = 0; r < bankOwner_.size(); ++r) {
        for (int c = 0; c < width_; ++c) {
            if (bankOwner_[r][c] == kFree)
                free.push_back(
                    Coord{c, static_cast<int>(r) * 2 + 1});
        }
    }
    std::sort(free.begin(), free.end(), [&](Coord a, Coord b) {
        const unsigned da = manhattanDistance(a, center);
        const unsigned db = manhattanDistance(b, center);
        if (da != db)
            return da < db;
        return a.y != b.y ? a.y < b.y : a.x < b.x;
    });
    SHARCH_ASSERT(free.size() >= count, "caller checked capacity");
    free.resize(count);
    for (const Coord &b : free)
        bankOwner_[bankRowIndex(b.y)][b.x] = id;
    return free;
}

std::optional<AllocationId>
FabricManager::allocate(unsigned slices, unsigned banks)
{
    if (slices == 0 || banks > freeBanks())
        return std::nullopt;
    const auto run = findRun(slices);
    if (!run)
        return std::nullopt;

    const AllocationId id = next_++;
    claim(*run, id);
    FabricAllocation alloc;
    alloc.id = id;
    alloc.slices = *run;
    alloc.banks = takeBanks(banks, *run, id);
    live_.emplace(id, std::move(alloc));
    return id;
}

bool
FabricManager::release(AllocationId id)
{
    auto it = live_.find(id);
    if (it == live_.end())
        return false;
    unclaim(it->second.slices);
    for (const Coord &b : it->second.banks)
        bankOwner_[bankRowIndex(b.y)][b.x] = kFree;
    live_.erase(it);
    return true;
}

const FabricAllocation *
FabricManager::find(AllocationId id) const
{
    auto it = live_.find(id);
    return it == live_.end() ? nullptr : &it->second;
}

std::vector<FabricAllocation>
FabricManager::allocations() const
{
    std::vector<FabricAllocation> out;
    out.reserve(live_.size());
    for (const auto &[id, alloc] : live_)
        out.push_back(alloc);
    return out;
}

std::optional<Cycles>
FabricManager::reshape(AllocationId id, unsigned slices,
                       unsigned banks)
{
    auto it = live_.find(id);
    if (it == live_.end() || slices == 0 ||
        slices > static_cast<unsigned>(width_)) {
        return std::nullopt;
    }
    FabricAllocation &alloc = it->second;
    const VCoreShape before = alloc.shape();

    // --- Slices: shrink from the right, or grow rightwards (then
    //     leftwards) into free neighbours. ---
    SliceRun run = alloc.slices;
    auto &row = sliceOwner_[sliceRowIndex(run.row)];
    if (slices < run.count) {
        for (unsigned i = slices; i < run.count; ++i)
            row[run.col + i] = kFree;
        run.count = slices;
    } else if (slices > run.count) {
        unsigned need = slices - run.count;
        unsigned grow_right = 0, grow_left = 0;
        while (grow_right < need &&
               run.col + static_cast<int>(run.count + grow_right) <
                   width_ &&
               row[run.col + run.count + grow_right] == kFree) {
            ++grow_right;
        }
        while (grow_right + grow_left < need && run.col > 0 &&
               run.col - static_cast<int>(grow_left) - 1 >= 0 &&
               row[run.col - grow_left - 1] == kFree) {
            ++grow_left;
        }
        if (grow_right + grow_left < need)
            return std::nullopt; // caller should defragment
        for (unsigned i = 0; i < grow_right; ++i)
            row[run.col + run.count + i] = id;
        for (unsigned i = 0; i < grow_left; ++i)
            row[run.col - 1 - static_cast<int>(i)] = id;
        run.col -= static_cast<int>(grow_left);
        run.count = slices;
    }
    alloc.slices = run;

    // --- Banks: release surplus (farthest first) or claim more. ---
    if (banks < alloc.banks.size()) {
        while (alloc.banks.size() > banks) {
            const Coord b = alloc.banks.back();
            alloc.banks.pop_back();
            bankOwner_[bankRowIndex(b.y)][b.x] = kFree;
        }
    } else if (banks > alloc.banks.size()) {
        const unsigned need =
            banks - static_cast<unsigned>(alloc.banks.size());
        if (need > freeBanks()) {
            // Roll back is unnecessary: Slice changes remain valid;
            // report failure so the caller can retry.
            return std::nullopt;
        }
        const auto extra = takeBanks(need, alloc.slices, id);
        alloc.banks.insert(alloc.banks.end(), extra.begin(),
                           extra.end());
    }

    return reconfig_.transitionCost(before, alloc.shape());
}

double
FabricManager::sliceUtilization() const
{
    return 1.0 - static_cast<double>(freeSlices()) / totalSlices();
}

double
FabricManager::bankUtilization() const
{
    if (totalBanks() == 0)
        return 0.0;
    return 1.0 - static_cast<double>(freeBanks()) / totalBanks();
}

unsigned
FabricManager::largestFreeRun() const
{
    unsigned best = 0;
    for (const auto &row : sliceOwner_) {
        unsigned run = 0;
        for (AllocationId owner : row) {
            run = owner == kFree ? run + 1 : 0;
            best = std::max(best, run);
        }
    }
    return best;
}

double
FabricManager::fragmentation() const
{
    const unsigned free = freeSlices();
    if (free == 0)
        return 1.0;
    return 1.0 - static_cast<double>(largestFreeRun()) / free;
}

std::vector<DefragMove>
FabricManager::defragment()
{
    std::vector<DefragMove> moves;

    // Sort live runs by (row, col) and repack them left to right, row
    // by row -- every Slice is interchangeable, so sliding a run is
    // a Register Flush plus interconnect reprogramming (section 3.8).
    std::vector<AllocationId> order;
    for (const auto &[id, alloc] : live_)
        order.push_back(id);
    std::sort(order.begin(), order.end(), [&](AllocationId a,
                                              AllocationId b) {
        const FabricAllocation &fa = live_.at(a);
        const FabricAllocation &fb = live_.at(b);
        if (fa.slices.row != fb.slices.row)
            return fa.slices.row < fb.slices.row;
        return fa.slices.col < fb.slices.col;
    });

    std::vector<int> cursor(sliceOwner_.size(), 0);
    for (AllocationId id : order) {
        FabricAllocation &alloc = live_.at(id);
        const SliceRun from = alloc.slices;

        // Greedy: first row whose cursor leaves room.
        for (std::size_t r = 0; r < sliceOwner_.size(); ++r) {
            if (cursor[r] + static_cast<int>(from.count) >
                width_) {
                continue;
            }
            SliceRun to{static_cast<int>(r) * 2, cursor[r],
                        from.count};
            cursor[r] += static_cast<int>(from.count);
            if (to.row == from.row && to.col == from.col) {
                alloc.slices = to; // already in place
                break;
            }
            unclaim(from);
            claim(to, id);
            alloc.slices = to;
            DefragMove mv;
            mv.id = id;
            mv.from = from;
            mv.to = to;
            // Register Flush per move (Slice-only reconfiguration).
            mv.cost = reconfig_.transitionCost(
                VCoreShape{0, from.count},
                VCoreShape{0, from.count + 1});
            moves.push_back(mv);
            break;
        }
    }
    return moves;
}

} // namespace sharch
