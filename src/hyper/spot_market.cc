#include "hyper/spot_market.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sharch {

SpotMarket::SpotMarket(UtilityOptimizer &opt, double slice_capacity,
                       double bank_capacity)
    : opt_(&opt), sliceCapacity_(slice_capacity),
      bankCapacity_(bank_capacity), prices_(market2())
{
    SHARCH_ASSERT(slice_capacity > 0.0 && bank_capacity > 0.0,
                  "the provider must have something to sell");
    prices_.name = "Spot";
}

void
SpotMarket::addCustomer(SpotCustomer customer)
{
    SHARCH_ASSERT(customer.budget > 0.0, "customers need budgets");
    customers_.push_back(std::move(customer));
}

SpotRound
SpotMarket::step(double adjust_rate)
{
    SpotRound round;
    round.round = ++round_;
    round.prices = prices_;

    for (const SpotCustomer &c : customers_) {
        SpotBid bid;
        bid.customer = &c;
        bid.choice = opt_->peakUtility(c.benchmark, c.utility, prices_,
                                       c.budget);
        bid.slicesWanted = bid.choice.cores * bid.choice.slices;
        bid.banksWanted = bid.choice.cores * bid.choice.banks;
        round.sliceDemand += bid.slicesWanted;
        round.bankDemand += bid.banksWanted;
        round.bids.push_back(bid);
    }

    round.sliceExcess = round.sliceDemand / sliceCapacity_ - 1.0;
    round.bankExcess = round.bankDemand / bankCapacity_ - 1.0;

    // Tatonnement: prices chase excess demand, clamped so one round
    // can at most halve or double a price, with a small floor so a
    // resource nobody wants still has a marginal cost.
    auto adjust = [&](double price, double excess) {
        const double factor = std::clamp(1.0 + adjust_rate * excess,
                                         0.5, 2.0);
        return std::max(0.05, price * factor);
    };
    prices_.slicePrice = adjust(prices_.slicePrice, round.sliceExcess);
    prices_.bankPrice = adjust(prices_.bankPrice, round.bankExcess);
    return round;
}

std::vector<SpotRound>
SpotMarket::runToClearing(double tolerance, unsigned max_rounds,
                          double adjust_rate)
{
    std::vector<SpotRound> history;
    for (unsigned i = 0; i < max_rounds; ++i) {
        history.push_back(step(adjust_rate));
        const SpotRound &r = history.back();
        // Cleared: neither resource is oversubscribed, and anything
        // undersubscribed has already hit the price floor.
        const bool slices_ok =
            r.sliceExcess <= tolerance &&
            (r.sliceExcess >= -tolerance ||
             r.prices.slicePrice <= 0.051);
        const bool banks_ok =
            r.bankExcess <= tolerance &&
            (r.bankExcess >= -tolerance ||
             r.prices.bankPrice <= 0.051);
        if (slices_ok && banks_ok)
            break;
    }
    return history;
}

} // namespace sharch
