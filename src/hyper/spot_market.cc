#include "hyper/spot_market.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace sharch {

#if SHARCH_OBS
namespace {

/** Registered once per process; per-thread shards keep bumps cheap. */
struct MarketMetrics
{
    obs::MetricId rounds =
        obs::MetricsRegistry::instance().addCounter("market.rounds");
    obs::MetricId reauctions =
        obs::MetricsRegistry::instance().addCounter(
            "market.reauctions");
};

MarketMetrics &
marketMetrics()
{
    static MarketMetrics m;
    return m;
}

} // namespace
#endif

SpotMarket::SpotMarket(UtilityOptimizer &opt, double slice_capacity,
                       double bank_capacity)
    : opt_(&opt), sliceCapacity_(slice_capacity),
      bankCapacity_(bank_capacity), prices_(market2())
{
    SHARCH_ASSERT(slice_capacity > 0.0 && bank_capacity > 0.0,
                  "the provider must have something to sell");
    prices_.name = "Spot";
}

CustomerId
SpotMarket::addCustomer(SpotCustomer customer)
{
    SHARCH_ASSERT(customer.budget > 0.0, "customers need budgets");
    customers_.push_back(std::move(customer));
    return static_cast<CustomerId>(customers_.size() - 1);
}

const SpotCustomer &
SpotMarket::customer(CustomerId id) const
{
    SHARCH_ASSERT(id < customers_.size(), "unknown customer id ",
                  id);
    return customers_[id];
}

bool
SpotMarket::deactivateCustomer(CustomerId id)
{
    if (id >= customers_.size() || !customers_[id].active)
        return false;
    customers_[id].active = false;
    return true;
}

unsigned
SpotMarket::activeCustomers() const
{
    unsigned n = 0;
    for (const SpotCustomer &c : customers_)
        n += c.active;
    return n;
}

SpotRound
SpotMarket::step(double adjust_rate)
{
    SpotRound round;
    round.round = ++round_;
    round.prices = prices_;

    for (std::size_t i = 0; i < customers_.size(); ++i) {
        const SpotCustomer &c = customers_[i];
        if (!c.active)
            continue;
        SpotBid bid;
        bid.customer = static_cast<CustomerId>(i);
        bid.choice = opt_->peakUtility(c.benchmark, c.utility, prices_,
                                       c.budget);
        bid.slicesWanted = bid.choice.cores * bid.choice.slices;
        bid.banksWanted = bid.choice.cores * bid.choice.banks;
        round.sliceDemand += bid.slicesWanted;
        round.bankDemand += bid.banksWanted;
        round.bids.push_back(bid);
    }

    round.sliceExcess = round.sliceDemand / sliceCapacity_ - 1.0;
    round.bankExcess = round.bankDemand / bankCapacity_ - 1.0;

    // Tatonnement: prices chase excess demand, clamped so one round
    // can at most halve or double a price, with a small floor so a
    // resource nobody wants still has a marginal cost.
    auto adjust = [&](double price, double excess) {
        const double factor = std::clamp(1.0 + adjust_rate * excess,
                                         0.5, 2.0);
        return std::max(0.05, price * factor);
    };
    prices_.slicePrice = adjust(prices_.slicePrice, round.sliceExcess);
    prices_.bankPrice = adjust(prices_.bankPrice, round.bankExcess);
#if SHARCH_OBS
    if (obs::enabled()) {
        obs::MetricsRegistry::instance().add(marketMetrics().rounds);
        // Each auction round is one tick of the market timeline.
        obs::Tracer::instance().record(
            {"round", "market", round_ - 1, round_, obs::kPidMarket,
             0, round.bids.size(), "bids"});
    }
#endif
    return round;
}

void
SpotMarket::reduceCapacity(double slices, double banks)
{
    SHARCH_ASSERT(slices >= 0.0 && banks >= 0.0,
                  "capacity loss cannot be negative");
    SHARCH_ASSERT(slices < sliceCapacity_ && banks < bankCapacity_,
                  "a provider with nothing to sell has no market");
    sliceCapacity_ -= slices;
    bankCapacity_ -= banks;
}

void
SpotMarket::restoreCapacity(double slices, double banks)
{
    SHARCH_ASSERT(slices >= 0.0 && banks >= 0.0,
                  "capacity gain cannot be negative");
    sliceCapacity_ += slices;
    bankCapacity_ += banks;
}

ReauctionResult
SpotMarket::reauctionAfterFailure(double slices_lost,
                                  double banks_lost, double tolerance,
                                  unsigned max_rounds,
                                  double adjust_rate)
{
    ReauctionResult result;
    result.slicesLost = slices_lost;
    result.banksLost = banks_lost;
    // The lost capacity is valued at the prices the customers were
    // actually paying when the fault hit.
    const double slice_value = slices_lost * prices_.slicePrice;
    const double bank_value = banks_lost * prices_.bankPrice;
    result.refundTotal = slice_value + bank_value;

    // Pro-rate refunds by each customer's demand share at the current
    // prices: whoever leaned hardest on the failed resource lost the
    // most service.  (With zero aggregate demand nobody held the
    // resource, so the refund pool splits evenly.)
    double slice_demand = 0.0, bank_demand = 0.0;
    std::vector<SpotBid> bids;
    for (std::size_t i = 0; i < customers_.size(); ++i) {
        const SpotCustomer &c = customers_[i];
        if (!c.active)
            continue;
        SpotBid bid;
        bid.customer = static_cast<CustomerId>(i);
        bid.choice = opt_->peakUtility(c.benchmark, c.utility, prices_,
                                       c.budget);
        bid.slicesWanted = bid.choice.cores * bid.choice.slices;
        bid.banksWanted = bid.choice.cores * bid.choice.banks;
        slice_demand += bid.slicesWanted;
        bank_demand += bid.banksWanted;
        bids.push_back(bid);
    }
    const double n = static_cast<double>(bids.size());
    for (const SpotBid &bid : bids) {
        const double slice_share = slice_demand > 0.0
                                       ? bid.slicesWanted / slice_demand
                                       : 1.0 / n;
        const double bank_share = bank_demand > 0.0
                                      ? bid.banksWanted / bank_demand
                                      : 1.0 / n;
        result.refunds.push_back(SpotRefund{
            bid.customer,
            slice_value * slice_share + bank_value * bank_share});
    }

    reduceCapacity(slices_lost, banks_lost);
#if SHARCH_OBS
    if (obs::enabled()) {
        obs::MetricsRegistry::instance().add(
            marketMetrics().reauctions);
        obs::Tracer::instance().record(
            {"reauction", "market", round_, round_, obs::kPidMarket,
             0, static_cast<std::uint64_t>(slices_lost), "slices_lost"});
    }
#endif
    result.rounds = runToClearing(tolerance, max_rounds, adjust_rate);
    return result;
}

SpotMarketSnapshot
SpotMarket::snapshot() const
{
    SpotMarketSnapshot snap;
    snap.sliceCapacity = sliceCapacity_;
    snap.bankCapacity = bankCapacity_;
    snap.prices = prices_;
    snap.round = round_;
    snap.customers = customers_;
    return snap;
}

void
SpotMarket::restore(const SpotMarketSnapshot &snap)
{
    SHARCH_ASSERT(snap.sliceCapacity > 0.0 &&
                      snap.bankCapacity > 0.0,
                  "a provider with nothing to sell has no market");
    sliceCapacity_ = snap.sliceCapacity;
    bankCapacity_ = snap.bankCapacity;
    prices_ = snap.prices;
    round_ = snap.round;
    customers_ = snap.customers;
}

bool
SpotMarket::checkConsistency(std::string *error) const
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = "market: " + what;
        return false;
    };
    if (!std::isfinite(sliceCapacity_) || sliceCapacity_ <= 0.0 ||
        !std::isfinite(bankCapacity_) || bankCapacity_ <= 0.0) {
        return fail("capacities must be finite and positive (a "
                    "provider with nothing to sell has no market)");
    }
    if (!std::isfinite(prices_.slicePrice) ||
        prices_.slicePrice < 0.0 ||
        !std::isfinite(prices_.bankPrice) ||
        prices_.bankPrice < 0.0) {
        return fail("prices must be finite and non-negative");
    }
    for (std::size_t i = 0; i < customers_.size(); ++i) {
        if (!std::isfinite(customers_[i].budget) ||
            customers_[i].budget < 0.0) {
            return fail("customer " + std::to_string(i) + " ('" +
                        customers_[i].name +
                        "') has a negative or non-finite budget");
        }
    }
    return true;
}

std::vector<SpotRound>
SpotMarket::runToClearing(double tolerance, unsigned max_rounds,
                          double adjust_rate)
{
    std::vector<SpotRound> history;
    for (unsigned i = 0; i < max_rounds; ++i) {
        history.push_back(step(adjust_rate));
        const SpotRound &r = history.back();
        // Cleared: neither resource is oversubscribed, and anything
        // undersubscribed has already hit the price floor.
        const bool slices_ok =
            r.sliceExcess <= tolerance &&
            (r.sliceExcess >= -tolerance ||
             r.prices.slicePrice <= 0.051);
        const bool banks_ok =
            r.bankExcess <= tolerance &&
            (r.bankExcess >= -tolerance ||
             r.prices.bankPrice <= 0.051);
        if (slices_ok && banks_ok)
            break;
    }
    return history;
}

} // namespace sharch
