/**
 * @file
 * The hypervisor's view of the fabric (sections 3.8 and 4).
 *
 * A Sharing Architecture chip is a sea of Slice tiles and L2 bank
 * tiles.  The hypervisor composes VCores by claiming a *contiguous*
 * run of Slices (operand latency demands adjacency) plus any set of
 * banks (banks need not be contiguous), and tears them down again;
 * because all Slices are interchangeable, fragmentation is repaired by
 * rescheduling Slices (section 3: "fixing fragmentation problems is as
 * simple as rescheduling Slices to VCores").
 *
 * FabricManager implements exactly that: allocation, release,
 * in-place reshaping, utilization/fragmentation metrics, and a
 * defragmentation planner whose moves carry the section 3.8 costs
 * (Register Flush per moved Slice run, L2 flush per moved bank).
 */

#ifndef SHARCH_HYPER_FABRIC_MANAGER_HH
#define SHARCH_HYPER_FABRIC_MANAGER_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/reconfig.hh"
#include "fault/fault_model.hh"
#include "noc/mesh.hh"

namespace sharch {

/** Identifier of one VCore allocation on the chip. */
using AllocationId = std::uint64_t;

/** A contiguous run of Slice tiles in one row. */
struct SliceRun
{
    int row = 0;
    int col = 0;       //!< first column of the run
    unsigned count = 0;

    bool contains(int r, int c) const
    {
        return r == row && c >= col &&
               c < col + static_cast<int>(count);
    }
};

/** One live VCore: its Slices and its banks. */
struct FabricAllocation
{
    AllocationId id = 0;
    SliceRun slices;
    std::vector<Coord> banks;

    VCoreShape shape() const
    {
        return VCoreShape{static_cast<unsigned>(banks.size()),
                          slices.count};
    }
};

/** One step of a defragmentation plan. */
struct DefragMove
{
    AllocationId id = 0;
    SliceRun from;
    SliceRun to;
    Cycles cost = 0; //!< Register Flush + migration cost
};

/** What the degradation policy did to one VCore after a fault. */
enum class DegradeKind
{
    Replaced,     //!< whole run moved to a healthy contiguous run
    Shrunk,       //!< fewer Slices via dynamic reconfiguration
    Evicted,      //!< no healthy run fits even one Slice
    BankReplaced, //!< lost bank substituted by a healthy free bank
    BankLost,     //!< lost bank, no free replacement: smaller L2
};

const char *degradeKindName(DegradeKind kind);

/**
 * Everything needed to rebuild a FabricManager exactly: geometry,
 * the id counter, every live allocation, and the fault sets.  The
 * owner grids are derived state (reconstructed by re-claiming each
 * allocation), so they are not stored.  AllocationEngine embeds
 * this in its sharch-state-v1 checkpoint document.
 */
struct FabricSnapshot
{
    int width = 0;
    int height = 0;
    AllocationId next = 1;
    std::vector<FabricAllocation> allocations; //!< ascending id
    std::vector<Coord> faultySliceTiles;       //!< chip coordinates
    std::vector<Coord> faultyBankTiles;
    std::vector<Coord> faultyLinkTiles;        //!< left endpoint
};

/** One VCore's graceful-degradation outcome. */
struct DegradeAction
{
    AllocationId id = 0;
    DegradeKind kind = DegradeKind::Replaced;
    SliceRun from;            //!< Slice run before the fault
    SliceRun to;              //!< run after (count 0 when evicted)
    unsigned slicesLost = 0;
    unsigned banksLost = 0;
    Cycles cost = 0;          //!< reconfiguration cycles charged
};

/**
 * Allocator for a chip of interleaved Slice and bank rows.
 *
 * Even rows hold Slices, odd rows hold 64 KB banks (the paper's
 * Figure 3 checkerboard).  A chip of width W and height H therefore
 * offers W*ceil(H/2) Slices and W*floor(H/2) banks.
 */
class FabricManager
{
  public:
    /** @param width tiles per row; @param height rows (>= 2). */
    FabricManager(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    unsigned totalSlices() const;
    unsigned totalBanks() const;
    unsigned freeSlices() const;
    unsigned freeBanks() const;

    /**
     * Allocate a VCore of @p slices contiguous Slices (first fit over
     * Slice rows) and @p banks banks (nearest free banks to the run).
     * @return nullopt when the request cannot be placed.
     */
    std::optional<AllocationId> allocate(unsigned slices,
                                         unsigned banks);

    /** Release an allocation; banks to be reused must be flushed. */
    bool release(AllocationId id);

    /** The allocation, or nullptr. */
    const FabricAllocation *find(AllocationId id) const;

    /** All live allocations. */
    std::vector<FabricAllocation> allocations() const;

    /**
     * Reshape in place: grow/shrink the Slice run at its current
     * position (growing requires free neighbours) and adjust banks.
     * @return the reconfiguration cost on success, nullopt on failure
     *         (the caller may then defragment or reallocate).
     */
    std::optional<Cycles> reshape(AllocationId id, unsigned slices,
                                  unsigned banks);

    /** Fraction of Slices in use. */
    double sliceUtilization() const;
    /** Fraction of banks in use. */
    double bankUtilization() const;

    /**
     * External fragmentation of the Slice fabric: 1 minus the largest
     * allocatable run over total free Slices (0 when any free Slice is
     * reachable in one run, 1 when nothing is free).
     */
    double fragmentation() const;

    /** Largest currently allocatable contiguous Slice run. */
    unsigned largestFreeRun() const;

    /**
     * Plan a compaction that slides every Slice run as far left/up as
     * possible (skipping faulty tiles and broken links).  Each moved
     * VCore pays the Slice-only reconfiguration cost (Register
     * Flush); bank assignments are untouched.  The plan is applied
     * immediately.
     */
    std::vector<DefragMove> defragment();

    // --- Fault handling (graceful degradation) -------------------

    /**
     * Mark one tile (or link) faulty.  The tile is excluded from all
     * future allocation, and any live VCore standing on it degrades
     * immediately:
     *
     *  - A Slice failure (or a broken link under the run) first tries
     *    to *re-place* the whole run on a contiguous healthy run,
     *    ranked by mean distance to the VCore's banks (the
     *    noc/placement cost).  If no run of the same length fits, the
     *    VCore is *shrunk* to the longest healthy run available (the
     *    paper's dynamic reconfiguration, driven by a fault instead
     *    of the autotuner).  If not even one Slice fits, the VCore is
     *    evicted and its resources freed.
     *  - A bank failure substitutes the nearest healthy free bank,
     *    or simply shrinks the VCore's L2 when none is free.  Either
     *    way the VCore pays the L2-flush reconfiguration cost.
     *
     * @return the degradation actions taken (empty when the tile was
     *         unowned).  Marking an already-faulty tile is a no-op.
     */
    std::vector<DegradeAction> markFaulty(fault::FaultKind kind,
                                          Coord tile);

    /**
     * Return a tile (or link) to service.  Live allocations are not
     * reshaped; the tile simply becomes allocatable again.
     * @return false when the tile was not faulty.
     */
    bool heal(fault::FaultKind kind, Coord tile);

    /** Route one schedule event to markFaulty()/heal(). */
    std::vector<DegradeAction> apply(const fault::FaultEvent &event);

    bool isFaulty(fault::FaultKind kind, Coord tile) const;
    unsigned faultySlices() const;
    unsigned faultyBanks() const;

    // --- Checkpoint/restore --------------------------------------

    /** Capture the full allocator state (allocations in id order). */
    FabricSnapshot snapshot() const;

    /**
     * Replace this manager's state wholesale with @p snap (geometry
     * included).  Every claim is validated -- runs on Slice rows and
     * in range, banks on bank rows, no overlaps, ids unique and
     * below the id counter -- so a tampered checkpoint is rejected
     * instead of corrupting the occupancy grid.
     * @return false (state unchanged) with @p error naming the first
     *         bad record.
     */
    bool restore(const FabricSnapshot &snap, std::string *error);

    /**
     * Deep self-check of the occupancy invariants the allocator
     * maintains: every cell the owner grids claim belongs to exactly
     * one live allocation (and vice versa), no allocation stands on
     * a faulty tile, no Slice run spans a broken link, and every id
     * is below the id counter.  Used by AllocationEngine::
     * checkInvariants() before a recovered engine accepts traffic.
     * @return false with @p error naming the first violation.
     */
    bool checkConsistency(std::string *error) const;

  private:
    int width_;
    int height_;
    ReconfigManager reconfig_;
    std::map<AllocationId, FabricAllocation> live_;
    std::vector<std::vector<AllocationId>> sliceOwner_; //!< [row][col]
    std::vector<std::vector<AllocationId>> bankOwner_;
    std::vector<std::vector<bool>> sliceBad_;  //!< [row][col]
    std::vector<std::vector<bool>> bankBad_;
    std::vector<std::vector<bool>> linkBad_;   //!< [row][col..col+1]
    AllocationId next_ = 1;

    static constexpr AllocationId kFree = 0;

    bool isSliceRow(int row) const { return row % 2 == 0; }
    int sliceRowIndex(int row) const { return row / 2; }
    int bankRowIndex(int row) const { return (row - 1) / 2; }

    bool sliceUsable(int r, int c) const
    {
        return sliceOwner_[r][c] == kFree && !sliceBad_[r][c];
    }
    /** Link between (c-1, c) of slice-row index r intact? */
    bool linkIntact(int r, int c) const { return !linkBad_[r][c - 1]; }

    std::optional<SliceRun> findRun(unsigned count) const;
    std::optional<SliceRun> bestRunFor(unsigned count,
                                       const std::vector<Coord> &banks)
        const;
    std::vector<Coord> takeBanks(unsigned count, const SliceRun &near,
                                 AllocationId id);
    void claim(const SliceRun &run, AllocationId id);
    void unclaim(const SliceRun &run);
    DegradeAction degrade(AllocationId id);
};

} // namespace sharch

#endif // SHARCH_HYPER_FABRIC_MANAGER_HH
