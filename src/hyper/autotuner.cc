#include "hyper/autotuner.hh"

#include <algorithm>

#include "common/logging.hh"
#include "config/sim_config.hh"
#include "core/perf_model.hh"

namespace sharch {

AutoTuner::AutoTuner(UtilityKind utility, Market market, double budget,
                     VCoreShape start)
    : utility_(utility), market_(std::move(market)), budget_(budget),
      current_(start)
{
    SHARCH_ASSERT(budget > 0.0, "tuner needs a budget");
    SHARCH_ASSERT(start.slices >= 1 &&
                      start.slices <= SimConfig::kMaxSlices,
                  "bad starting shape");
    inFlight_ = current_;
}

double
AutoTuner::utilityOf(const VCoreShape &shape, double perf) const
{
    const double v = coresAffordable(market_, budget_, shape.banks,
                                     shape.slices);
    return utilityValue(utility_, v, perf);
}

std::optional<VCoreShape>
AutoTuner::stepBanks(const VCoreShape &s, int direction)
{
    // Banks move along the paper's log2 grid: 0,1,2,4,...,128.
    const auto &grid = l2BankGrid();
    auto it = std::find(grid.begin(), grid.end(), s.banks);
    if (it == grid.end())
        return std::nullopt;
    const auto idx = static_cast<std::size_t>(it - grid.begin());
    if (direction > 0 && idx + 1 < grid.size())
        return VCoreShape{grid[idx + 1], s.slices};
    if (direction < 0 && idx > 0)
        return VCoreShape{grid[idx - 1], s.slices};
    return std::nullopt;
}

void
AutoTuner::proposeNeighbours()
{
    pending_.clear();
    auto add = [&](std::optional<VCoreShape> s) {
        if (!s)
            return;
        if (s->slices < 1 || s->slices > SimConfig::kMaxSlices)
            return;
        pending_.push_back(*s);
    };
    add(stepBanks(current_, +1));
    add(stepBanks(current_, -1));
    add(VCoreShape{current_.banks, current_.slices + 1});
    if (current_.slices > 1)
        add(VCoreShape{current_.banks, current_.slices - 1});
}

std::optional<VCoreShape>
AutoTuner::nextShape()
{
    if (converged_)
        return std::nullopt;
    if (inFlight_)
        return inFlight_;
    if (pending_.empty()) {
        converged_ = true;
        return std::nullopt;
    }
    inFlight_ = pending_.back();
    pending_.pop_back();
    return inFlight_;
}

void
AutoTuner::report(double perf)
{
    SHARCH_ASSERT(inFlight_.has_value(),
                  "report() without a proposed shape");
    const VCoreShape measured = *inFlight_;
    inFlight_.reset();

    TuneTrial trial;
    trial.shape = measured;
    trial.perf = perf;
    trial.utility = utilityOf(measured, perf);
    history_.push_back(trial);

    if (!haveBaseline_) {
        // First measurement establishes the starting point.
        haveBaseline_ = true;
        best_ = trial;
        proposeNeighbours();
        return;
    }

    if (trial.utility > best_.utility) {
        // Move the VM to the better shape and restart the
        // neighbourhood from there, paying the transition.
        reconfigSpent_ += reconfig_.transitionCost(current_,
                                                   measured);
        current_ = measured;
        best_ = trial;
        proposeNeighbours();
    }
    // Otherwise stay; remaining neighbours keep draining until the
    // neighbourhood is exhausted (a local optimum).
}

} // namespace sharch
