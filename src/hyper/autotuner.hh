/**
 * @file
 * The auto-tuner of section 4.
 *
 * A customer without a performance model "could utilize an auto-tuner
 * [which] would slowly search the configuration space by varying the
 * VM instance configuration", judging success through heartbeat-style
 * performance feedback.  AutoTuner implements that loop: it proposes a
 * VCore shape, the caller measures it (heartbeats, or a PerfModel in
 * simulation), reports the measurement back, and the tuner hill-climbs
 * over the (banks x slices) grid on the customer's utility, counting
 * the reconfiguration cost of every move it takes.
 */

#ifndef SHARCH_HYPER_AUTOTUNER_HH
#define SHARCH_HYPER_AUTOTUNER_HH

#include <optional>
#include <vector>

#include "core/reconfig.hh"
#include "econ/market.hh"
#include "econ/utility.hh"

namespace sharch {

/** One completed trial. */
struct TuneTrial
{
    VCoreShape shape;
    double perf = 0.0;    //!< measured heartbeat rate (IPC)
    double utility = 0.0; //!< derived objective at this shape
};

/**
 * Online hill climber over VCore shapes.
 *
 * Protocol:
 *   while (auto shape = tuner.nextShape()) {
 *       double perf = measure(*shape);   // run the app, read
 *       tuner.report(perf);              // heartbeats
 *   }
 *   use tuner.best();
 */
class AutoTuner
{
  public:
    /**
     * @param utility the customer's utility family
     * @param market  current resource prices
     * @param budget  the customer's budget (drives v in the utility)
     * @param start   initial shape (defaults to 1 Slice, 2 banks)
     */
    AutoTuner(UtilityKind utility, Market market, double budget,
              VCoreShape start = VCoreShape{2, 1});

    /** Shape to measure next; nullopt when converged. */
    std::optional<VCoreShape> nextShape();

    /** Report the measured performance of the last proposed shape. */
    void report(double perf);

    /** Best trial so far. */
    const TuneTrial &best() const { return best_; }

    /** Every completed trial, in order. */
    const std::vector<TuneTrial> &history() const { return history_; }

    /** Total reconfiguration cycles spent moving between shapes. */
    Cycles reconfigurationSpent() const { return reconfigSpent_; }

    bool converged() const { return converged_; }

  private:
    UtilityKind utility_;
    Market market_;
    double budget_;
    ReconfigManager reconfig_;

    VCoreShape current_;
    std::vector<VCoreShape> pending_;  //!< neighbours left to try
    std::optional<VCoreShape> inFlight_;
    TuneTrial best_;
    std::vector<TuneTrial> history_;
    Cycles reconfigSpent_ = 0;
    bool converged_ = false;
    bool haveBaseline_ = false;

    void proposeNeighbours();
    double utilityOf(const VCoreShape &shape, double perf) const;
    static std::optional<VCoreShape> stepBanks(const VCoreShape &s,
                                               int direction);
};

} // namespace sharch

#endif // SHARCH_HYPER_AUTOTUNER_HH
