/**
 * @file
 * A spot market for sub-core resources (sections 2.1 and 2.3).
 *
 * EC2's Spot Pricing auctions whole VM instances; the Sharing
 * Architecture lets the provider auction Slices and 64 KB banks
 * separately and "price sub-core resources dynamically and based on
 * instantaneous market demand".  SpotMarket implements a tatonnement
 * loop: each round, customers solve their Equation 2 budget problem
 * at the posted prices, the provider compares aggregate demand with
 * the fabric's capacity, and prices move toward clearing.
 */

#ifndef SHARCH_HYPER_SPOT_MARKET_HH
#define SHARCH_HYPER_SPOT_MARKET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "econ/market.hh"
#include "econ/optimizer.hh"

namespace sharch {

/**
 * Stable handle of one customer in a SpotMarket.  Ids are assigned
 * in addCustomer() order and never reused: a departed customer goes
 * inactive but keeps its slot, so a CustomerId stays valid across
 * later arrivals (a raw pointer into the customer vector would not)
 * and serializes cleanly into sharch-state-v1 documents.
 */
using CustomerId = std::uint32_t;

/** One bidder in the spot market. */
struct SpotCustomer
{
    std::string name;
    std::string benchmark;
    UtilityKind utility = UtilityKind::Throughput;
    double budget = 0.0;
    bool active = true; //!< departed customers stop bidding
};

/** A customer's demand at the current prices. */
struct SpotBid
{
    CustomerId customer = 0;
    OptResult choice;          //!< shape + v at current prices
    double slicesWanted = 0.0; //!< v * slices
    double banksWanted = 0.0;  //!< v * banks
};

/** One round's market state. */
struct SpotRound
{
    unsigned round = 0;
    Market prices;
    std::vector<SpotBid> bids;
    double sliceDemand = 0.0; //!< aggregate, in Slices
    double bankDemand = 0.0;  //!< aggregate, in banks
    double sliceExcess = 0.0; //!< demand/capacity - 1
    double bankExcess = 0.0;
};

/** Money returned to one customer after a capacity failure. */
struct SpotRefund
{
    CustomerId customer = 0;
    double amount = 0.0;
};

/** Outcome of re-auctioning after the fabric lost capacity. */
struct ReauctionResult
{
    double slicesLost = 0.0;
    double banksLost = 0.0;
    double refundTotal = 0.0;        //!< lost capacity at old prices
    std::vector<SpotRefund> refunds; //!< pro-rated by demand share
    std::vector<SpotRound> rounds;   //!< re-clearing history
};

/**
 * Everything a SpotMarket needs to be rebuilt exactly: capacities,
 * posted prices, the tatonnement round counter, and the customer
 * book in id order.  The AllocationEngine embeds this in its
 * sharch-state-v1 checkpoint document.
 */
struct SpotMarketSnapshot
{
    double sliceCapacity = 0.0;
    double bankCapacity = 0.0;
    Market prices;
    unsigned round = 0;
    std::vector<SpotCustomer> customers; //!< index == CustomerId
};

/** Dynamic sub-core pricing over a fixed-capacity fabric. */
class SpotMarket
{
  public:
    /**
     * @param opt            shared performance surface
     * @param slice_capacity Slices the provider can lease
     * @param bank_capacity  64 KB banks the provider can lease
     */
    SpotMarket(UtilityOptimizer &opt, double slice_capacity,
               double bank_capacity);

    /** Register a bidder; the returned id is stable forever. */
    CustomerId addCustomer(SpotCustomer customer);

    /** The customer behind a SpotBid/SpotRefund handle. */
    const SpotCustomer &customer(CustomerId id) const;

    /** The whole book, active and departed, in id order. */
    const std::vector<SpotCustomer> &customers() const
    {
        return customers_;
    }

    /**
     * Take a customer out of the market (a tenant departed).  The
     * id stays valid for lookups; the customer just stops bidding.
     * @return false when the id was unknown or already inactive.
     */
    bool deactivateCustomer(CustomerId id);

    /** Bidders that still participate in auctions. */
    unsigned activeCustomers() const;

    /** Current posted prices (starts at Market2's area parity). */
    const Market &prices() const { return prices_; }

    /** Rounds stepped so far (the tatonnement clock). */
    unsigned round() const { return round_; }

    double sliceCapacity() const { return sliceCapacity_; }
    double bankCapacity() const { return bankCapacity_; }

    /**
     * Shrink leasable capacity (a fault took tiles out of service).
     * The remainder must stay positive: a provider with nothing to
     * sell has no market.
     */
    void reduceCapacity(double slices, double banks);

    /** Return healed capacity to the pool. */
    void restoreCapacity(double slices, double banks);

    /**
     * Run one tatonnement round: collect bids at current prices, then
     * move each price by `adjust_rate * excess demand` (bounded).
     */
    SpotRound step(double adjust_rate = 0.25);

    /**
     * Iterate until both excess demands are within @p tolerance or
     * @p max_rounds elapse.  @return the full round history.
     */
    std::vector<SpotRound> runToClearing(double tolerance = 0.10,
                                         unsigned max_rounds = 50,
                                         double adjust_rate = 0.25);

    /**
     * React to the fabric losing @p slices_lost Slices and
     * @p banks_lost banks: refund the lost capacity at the *current*
     * prices (each customer pro-rated by their share of demand at
     * those prices -- customers who wanted more of the failed
     * resource get more money back), shrink capacity, and re-run the
     * auction to a new clearing.  refundTotal is exactly
     * slices_lost * slicePrice + banks_lost * bankPrice.
     */
    ReauctionResult reauctionAfterFailure(double slices_lost,
                                          double banks_lost,
                                          double tolerance = 0.10,
                                          unsigned max_rounds = 50,
                                          double adjust_rate = 0.25);

    /** Capture the full market state for a checkpoint. */
    SpotMarketSnapshot snapshot() const;

    /**
     * Replace the market state wholesale (checkpoint restore).  The
     * optimizer binding is unchanged: prices and books serialize,
     * the performance surface is reconstructed by the host.
     */
    void restore(const SpotMarketSnapshot &snap);

    /**
     * Deep self-check of the book and price invariants: capacities
     * positive and finite, prices finite and non-negative, every
     * budget finite and non-negative.  Used by AllocationEngine::
     * checkInvariants() before a recovered engine accepts traffic.
     * @return false with @p error naming the first violation.
     */
    bool checkConsistency(std::string *error) const;

  private:
    UtilityOptimizer *opt_;
    double sliceCapacity_;
    double bankCapacity_;
    Market prices_;
    std::vector<SpotCustomer> customers_;
    unsigned round_ = 0;
};

} // namespace sharch

#endif // SHARCH_HYPER_SPOT_MARKET_HH
