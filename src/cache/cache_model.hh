/**
 * @file
 * A set-associative, write-back, LRU cache tag model.
 *
 * Used for the per-Slice L1 I/D caches and for each 64 KB L2 bank.
 * Only tags are modelled (timing simulation does not need data).
 */

#ifndef SHARCH_CACHE_CACHE_MODEL_HH
#define SHARCH_CACHE_CACHE_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "config/sim_config.hh"

namespace sharch {

/** Result of a cache access. */
struct AccessResult
{
    bool hit = false;
    bool writebackVictim = false; //!< a dirty line was evicted
    Addr victimLine = 0;          //!< line address of the victim
};

/** Tag-only set-associative cache with true-LRU replacement. */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig &cfg);

    /**
     * Access @p addr; on a miss the line is filled (allocate-on-miss
     * for both reads and writes) and the LRU victim evicted.
     */
    AccessResult access(Addr addr, bool is_write);

    /** True when the line holding @p addr is present (no LRU update). */
    bool probe(Addr addr) const;

    /** Invalidate the line holding @p addr if present.
     *  @return true when an invalidation happened. */
    bool invalidate(Addr addr);

    /** Invalidate everything; @return number of dirty lines flushed. */
    std::size_t flushAll();

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t associativity() const { return cfg_.associativity; }
    std::uint64_t sizeBytes() const { return cfg_.sizeBytes; }

    Count accesses() const { return accesses_; }
    Count misses() const { return misses_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    CacheConfig cfg_;
    std::uint32_t numSets_;
    unsigned blockShift_;
    std::vector<Line> lines_; //!< numSets_ x associativity, row-major
    std::uint64_t stamp_ = 0;
    Count accesses_ = 0;
    Count misses_ = 0;

    Addr lineAddr(Addr addr) const { return addr >> blockShift_; }

    /**
     * Hashed set index.  Slices and L2 banks receive line-interleaved
     * address streams (every numSlices-th / numBanks-th line), so a
     * plain `line % numSets` would strand most sets; a multiplicative
     * hash spreads any interleaved stream over all sets.
     */
    std::uint32_t setIndex(Addr line) const
    {
        const Addr h = line * 0x9e3779b97f4a7c15ULL;
        return static_cast<std::uint32_t>(h >> 32) % numSets_;
    }
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
};

} // namespace sharch

#endif // SHARCH_CACHE_CACHE_MODEL_HH
