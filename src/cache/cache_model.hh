/**
 * @file
 * A set-associative, write-back, LRU cache tag model.
 *
 * Used for the per-Slice L1 I/D caches and for each 64 KB L2 bank.
 * Only tags are modelled (timing simulation does not need data).
 */

#ifndef SHARCH_CACHE_CACHE_MODEL_HH
#define SHARCH_CACHE_CACHE_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "config/sim_config.hh"

namespace sharch {

/** Result of a cache access. */
struct AccessResult
{
    bool hit = false;
    bool writebackVictim = false; //!< a dirty line was evicted
    Addr victimLine = 0;          //!< line address of the victim
};

/** Tag-only set-associative cache with true-LRU replacement. */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig &cfg);

    /**
     * Access @p addr; on a miss the line is filled (allocate-on-miss
     * for both reads and writes) and the LRU victim evicted.
     *
     * Defined inline: every load, store, and fetch group in the
     * timing walk performs at least one tag access, and the call
     * overhead of the out-of-line version showed in end-to-end
     * instr/s.  Behaviour is unchanged.
     */
    AccessResult
    access(Addr addr, bool is_write)
    {
        ++accesses_;
        ++stamp_;
        AccessResult res;
        if (Line *line = findLine(addr)) {
            line->lruStamp = stamp_;
            line->dirty = line->dirty || is_write;
            res.hit = true;
            return res;
        }
        ++misses_;
        // Fill: evict the LRU way of the set.
        const Addr line = lineAddr(addr);
        const std::uint32_t set = setIndex(line);
        Line *base = &lines_[static_cast<std::size_t>(set) *
                             cfg_.associativity];
        Line *victim = &base[0];
        for (std::uint32_t w = 1; w < cfg_.associativity; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
            if (base[w].lruStamp < victim->lruStamp && victim->valid)
                victim = &base[w];
        }
        if (victim->valid && victim->dirty) {
            res.writebackVictim = true;
            res.victimLine = victim->tag;
        }
        victim->tag = line;
        victim->valid = true;
        victim->dirty = is_write;
        victim->lruStamp = stamp_;
        return res;
    }

    /** True when the line holding @p addr is present (no LRU update). */
    bool probe(Addr addr) const;

    /** Invalidate the line holding @p addr if present.
     *  @return true when an invalidation happened. */
    bool invalidate(Addr addr);

    /** Invalidate everything; @return number of dirty lines flushed. */
    std::size_t flushAll();

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t associativity() const { return cfg_.associativity; }
    std::uint64_t sizeBytes() const { return cfg_.sizeBytes; }

    Count accesses() const { return accesses_; }
    Count misses() const { return misses_; }

    /**
     * Digest of the architectural tag state: valid/dirty bits, tags,
     * and LRU order of every way.  Two caches that saw the same access
     * sequence digest identically; the sampling tests use this to show
     * a functional fast-forward leaves the same warm state as the
     * detailed walk.  Counters are excluded (they are statistics, not
     * state).
     */
    std::uint64_t stateDigest() const;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    CacheConfig cfg_;
    std::uint32_t numSets_;
    std::uint32_t setMask_ = 0; //!< numSets_ - 1 when numSets_ is pow2
    bool setsPow2_ = false;
    unsigned blockShift_;
    std::vector<Line> lines_; //!< numSets_ x associativity, row-major
    std::uint64_t stamp_ = 0;
    Count accesses_ = 0;
    Count misses_ = 0;

    Addr lineAddr(Addr addr) const { return addr >> blockShift_; }

    /**
     * Hashed set index.  Slices and L2 banks receive line-interleaved
     * address streams (every numSlices-th / numBanks-th line), so a
     * plain `line % numSets` would strand most sets; a multiplicative
     * hash spreads any interleaved stream over all sets.
     */
    std::uint32_t setIndex(Addr line) const
    {
        const Addr h = line * 0x9e3779b97f4a7c15ULL;
        const auto hi = static_cast<std::uint32_t>(h >> 32);
        // All stock geometries have power-of-two set counts, where
        // `hi & (numSets - 1)` equals `hi % numSets` exactly; the
        // modulo stays as the fallback for odd configs.
        return setsPow2_ ? (hi & setMask_) : (hi % numSets_);
    }

    Line *
    findLine(Addr addr)
    {
        const Addr line = lineAddr(addr);
        const std::uint32_t set = setIndex(line);
        Line *base = &lines_[static_cast<std::size_t>(set) *
                             cfg_.associativity];
        for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
            if (base[w].valid && base[w].tag == line)
                return &base[w];
        }
        return nullptr;
    }

    const Line *
    findLine(Addr addr) const
    {
        return const_cast<CacheModel *>(this)->findLine(addr);
    }
};

} // namespace sharch

#endif // SHARCH_CACHE_CACHE_MODEL_HH
