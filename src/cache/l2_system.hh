/**
 * @file
 * The configurable, banked L2 of the Sharing Architecture.
 *
 * Any 64 KB L2 Cache Bank can serve any VCore; a VM attaches a set of
 * banks, addresses are low-order interleaved by cache line across the
 * banks, and the hit latency grows with the mesh distance between the
 * missing Slice and the bank: distance*2 + 4 (Table 3).  For VMs with
 * several VCores the coherence point sits between the L1s and the
 * shared L2: a directory in the L2 tracks which VCores hold each line
 * and invalidates remote L1 copies on writes (section 3.5).
 *
 * Reallocating a bank to a different VM requires flushing its dirty
 * state to memory (section 3.8); flushBank/flushAll support that and
 * the reconfiguration experiments charge the 10,000-cycle penalty.
 */

#ifndef SHARCH_CACHE_L2_SYSTEM_HH
#define SHARCH_CACHE_L2_SYSTEM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/cache_model.hh"
#include "common/logging.hh"
#include "common/scheduling.hh"
#include "common/types.hh"
#include "config/sim_config.hh"
#include "noc/placement.hh"
#include "stats/stats.hh"

namespace sharch {

/** Timing and coherence outcome of one L2 access. */
struct L2AccessResult
{
    Cycles doneCycle = 0;   //!< data available at the requesting Slice
    bool l2Hit = false;
    bool wentToMemory = false;
    unsigned invalidations = 0; //!< remote L1 lines invalidated
};

/**
 * A VM's shared L2: banks + directory.
 *
 * The owner registers each VCore's per-Slice L1 D-caches so that
 * directory-driven invalidations actually remove remote copies.
 */
class L2System
{
  public:
    /**
     * @param cfg        bank geometry, latencies
     * @param placement  per-VCore placements (index = VCore id); used
     *                   for Slice-to-bank distances
     */
    L2System(const SimConfig &cfg,
             std::vector<FabricPlacement> placements);

    /** Register one VCore's L1Ds (one per Slice) for invalidations. */
    void registerL1s(VCoreId vc, std::vector<CacheModel *> l1ds);

    /** Number of banks attached to this VM. */
    unsigned numBanks() const
    { return static_cast<unsigned>(banks_.size()); }

    /** The bank serving @p addr (low-order line interleave). */
    BankId
    bankFor(Addr addr) const
    {
        // Hot loop: one bank sort per L1 miss and store drain.  Block
        // sizes and the common bank counts are powers of two, so the
        // divide/modulo collapse to shifts and masks.
        SHARCH_DCHECK(!banks_.empty(), "no banks attached");
        const Addr line = lineOf(addr);
        return static_cast<BankId>(
            banksPow2_ ? line & bankMask_ : line % banks_.size());
    }

    /**
     * Handle an L1 miss from Slice @p slice of VCore @p vc at time
     * @p now.  Performs the L2 lookup (with bank-port contention), a
     * memory access on L2 miss, and any directory invalidations.
     */
    L2AccessResult access(VCoreId vc, SliceId slice, Addr addr,
                          bool is_write, Cycles now);

    /**
     * The functional twin of access(): performs exactly the same
     * architectural mutations -- directory sharers, remote-L1
     * invalidations on writes, bank tag fill/eviction, access and
     * miss counters -- but no port scheduling and no latency math.
     * Every mutation access() makes is independent of its @p now
     * argument, so a fast-forward built on this call leaves the L2 in
     * the identical tag/directory state a detailed walk would
     * (asserted by the warm-state differential tests).
     *
     * The returned result carries the architectural outcome (hit,
     * wentToMemory, invalidations) with doneCycle = 0; the sampling
     * controller counts these to know exact whole-stream miss totals.
     */
    L2AccessResult accessFunctional(VCoreId vc, Addr addr,
                                    bool is_write);

    /**
     * Install @p addr's line functionally (no timing, no statistics)
     * -- used to start runs from steady-state cache contents.
     */
    void prefill(VCoreId vc, Addr addr);

    /**
     * Digest of bank tag state plus the coherence directory (sorted
     * by line so unordered_map iteration order cannot leak in).
     */
    std::uint64_t stateDigest() const;

    /** Tag peek: would @p addr hit right now?  False with no banks. */
    bool probeHit(Addr addr) const;

    /** Flush one bank; @return dirty lines written back. */
    std::size_t flushBank(BankId bank);

    /** Flush all banks and the directory. */
    std::size_t flushAll();

    Count accesses() const { return accesses_; }
    Count misses() const { return misses_; }
    Count invalidations() const { return invalidations_; }
    Count memoryAccesses() const { return memoryAccesses_; }

  private:
    SimConfig cfg_;
    std::vector<FabricPlacement> placements_;
    std::vector<CacheModel> banks_;
    std::vector<SlottedPort> bankPort_; //!< 1 access/cycle per bank
    std::uint32_t blockShift_ = 0;  //!< log2(blockBytes) when pow2
    bool blockPow2_ = false;
    Addr bankMask_ = 0;             //!< banks-1 when pow2
    bool banksPow2_ = false;

    /** The 64 B-line index of @p addr. */
    Addr
    lineOf(Addr addr) const
    {
        return blockPow2_ ? addr >> blockShift_
                          : addr / cfg_.l2Bank.blockBytes;
    }
    /** line address -> bitmask of VCores caching it in an L1. */
    std::unordered_map<Addr, std::uint32_t> directory_;
    std::vector<std::vector<CacheModel *>> l1ds_; //!< [vcore][slice]

    Count accesses_ = 0;
    Count misses_ = 0;
    Count invalidations_ = 0;
    Count memoryAccesses_ = 0;

    unsigned hopsTo(VCoreId vc, SliceId slice, BankId bank) const;
};

} // namespace sharch

#endif // SHARCH_CACHE_L2_SYSTEM_HH
