#include "cache/cache_model.hh"

#include "common/logging.hh"
#include "common/math_util.hh"

namespace sharch {

CacheModel::CacheModel(const CacheConfig &cfg) : cfg_(cfg)
{
    SHARCH_ASSERT(cfg.sizeBytes > 0 && cfg.blockBytes > 0 &&
                      cfg.associativity > 0,
                  "degenerate cache geometry");
    SHARCH_ASSERT(isPow2(cfg.blockBytes), "block size must be pow2");
    const std::uint64_t num_lines = cfg.sizeBytes / cfg.blockBytes;
    SHARCH_ASSERT(num_lines >= cfg.associativity,
                  "cache smaller than one set");
    numSets_ = static_cast<std::uint32_t>(num_lines / cfg.associativity);
    blockShift_ = floorLog2(cfg.blockBytes);
    lines_.resize(num_lines);
}

CacheModel::Line *
CacheModel::findLine(Addr addr)
{
    const Addr line = lineAddr(addr);
    const std::uint32_t set = setIndex(line);
    Line *base = &lines_[static_cast<std::size_t>(set) *
                         cfg_.associativity];
    for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
        if (base[w].valid && base[w].tag == line)
            return &base[w];
    }
    return nullptr;
}

const CacheModel::Line *
CacheModel::findLine(Addr addr) const
{
    return const_cast<CacheModel *>(this)->findLine(addr);
}

AccessResult
CacheModel::access(Addr addr, bool is_write)
{
    ++accesses_;
    ++stamp_;
    AccessResult res;
    if (Line *line = findLine(addr)) {
        line->lruStamp = stamp_;
        line->dirty = line->dirty || is_write;
        res.hit = true;
        return res;
    }
    ++misses_;
    // Fill: evict the LRU way of the set.
    const Addr line = lineAddr(addr);
    const std::uint32_t set = setIndex(line);
    Line *base = &lines_[static_cast<std::size_t>(set) *
                         cfg_.associativity];
    Line *victim = &base[0];
    for (std::uint32_t w = 1; w < cfg_.associativity; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lruStamp < victim->lruStamp && victim->valid)
            victim = &base[w];
    }
    if (victim->valid && victim->dirty) {
        res.writebackVictim = true;
        res.victimLine = victim->tag;
    }
    victim->tag = line;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lruStamp = stamp_;
    return res;
}

bool
CacheModel::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
CacheModel::invalidate(Addr addr)
{
    if (Line *line = findLine(addr)) {
        line->valid = false;
        line->dirty = false;
        return true;
    }
    return false;
}

std::size_t
CacheModel::flushAll()
{
    std::size_t dirty = 0;
    for (Line &l : lines_) {
        if (l.valid && l.dirty)
            ++dirty;
        l.valid = false;
        l.dirty = false;
    }
    return dirty;
}

} // namespace sharch
