#include "cache/cache_model.hh"

#include "common/logging.hh"
#include "common/math_util.hh"

namespace sharch {

CacheModel::CacheModel(const CacheConfig &cfg) : cfg_(cfg)
{
    SHARCH_ASSERT(cfg.sizeBytes > 0 && cfg.blockBytes > 0 &&
                      cfg.associativity > 0,
                  "degenerate cache geometry");
    SHARCH_ASSERT(isPow2(cfg.blockBytes), "block size must be pow2");
    const std::uint64_t num_lines = cfg.sizeBytes / cfg.blockBytes;
    SHARCH_ASSERT(num_lines >= cfg.associativity,
                  "cache smaller than one set");
    numSets_ = static_cast<std::uint32_t>(num_lines / cfg.associativity);
    setsPow2_ = isPow2(numSets_);
    setMask_ = setsPow2_ ? numSets_ - 1 : 0;
    blockShift_ = floorLog2(cfg.blockBytes);
    lines_.resize(num_lines);
}

bool
CacheModel::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
CacheModel::invalidate(Addr addr)
{
    if (Line *line = findLine(addr)) {
        line->valid = false;
        line->dirty = false;
        return true;
    }
    return false;
}

std::uint64_t
CacheModel::stateDigest() const
{
    std::uint64_t h = kDigestSeed;
    for (const Line &l : lines_) {
        h = digestMix(h, l.valid ? 1u : 0u);
        if (!l.valid)
            continue;
        h = digestMix(h, l.tag);
        h = digestMix(h, l.dirty ? 1u : 0u);
        h = digestMix(h, l.lruStamp);
    }
    return h;
}

std::size_t
CacheModel::flushAll()
{
    std::size_t dirty = 0;
    for (Line &l : lines_) {
        if (l.valid && l.dirty)
            ++dirty;
        l.valid = false;
        l.dirty = false;
    }
    return dirty;
}

} // namespace sharch
