#include "cache/l2_system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "obs/obs.hh"

namespace sharch {

#if SHARCH_OBS
namespace {

/** Registered once per process; per-thread shards keep bumps cheap. */
struct CacheMetrics
{
    obs::MetricId accesses =
        obs::MetricsRegistry::instance().addCounter(
            "cache.l2_accesses");
    obs::MetricId misses =
        obs::MetricsRegistry::instance().addCounter("cache.l2_misses");
    obs::MetricId invalidations =
        obs::MetricsRegistry::instance().addCounter(
            "cache.invalidations");
    obs::HistogramHandle latency =
        obs::MetricsRegistry::instance().addHistogram(
            "cache.l2_latency", 0.0, 8.0, 32);
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics m;
    return m;
}

} // namespace
#endif

L2System::L2System(const SimConfig &cfg,
                   std::vector<FabricPlacement> placements)
    : cfg_(cfg), placements_(std::move(placements))
{
    SHARCH_ASSERT(!placements_.empty(), "L2System needs >= 1 VCore");
    blockPow2_ = cfg_.l2Bank.blockBytes > 0 &&
                 isPow2(cfg_.l2Bank.blockBytes);
    blockShift_ = blockPow2_ ? floorLog2(cfg_.l2Bank.blockBytes) : 0;
    banksPow2_ = cfg_.numL2Banks > 0 && isPow2(cfg_.numL2Banks);
    bankMask_ = banksPow2_ ? cfg_.numL2Banks - 1 : 0;
    banks_.reserve(cfg_.numL2Banks);
    for (std::uint32_t b = 0; b < cfg_.numL2Banks; ++b) {
        banks_.emplace_back(cfg_.l2Bank);
        bankPort_.emplace_back(1);
    }
    l1ds_.resize(placements_.size());
#if SHARCH_OBS
    if (obs::enabled()) {
        for (std::uint32_t b = 0; b < cfg_.numL2Banks; ++b) {
            obs::Tracer::instance().nameTrack(
                obs::kPidCache, b, "bank" + std::to_string(b));
        }
    }
#endif
}

void
L2System::registerL1s(VCoreId vc, std::vector<CacheModel *> l1ds)
{
    SHARCH_ASSERT(vc < l1ds_.size(), "VCore id out of range");
    l1ds_[vc] = std::move(l1ds);
}

unsigned
L2System::hopsTo(VCoreId vc, SliceId slice, BankId bank) const
{
    SHARCH_DCHECK(vc < placements_.size(), "VCore id out of range");
    return placements_[vc].sliceToBankHops(slice, bank);
}

L2AccessResult
L2System::access(VCoreId vc, SliceId slice, Addr addr, bool is_write,
                 Cycles now)
{
    L2AccessResult res;
    const bool multi_vcore = placements_.size() > 1;
    const Addr line = lineOf(addr);

    // Directory maintenance (coherence point between L1 and L2).
    if (multi_vcore) {
        std::uint32_t &sharers = directory_[line];
        if (is_write) {
            for (std::size_t other = 0; other < l1ds_.size(); ++other) {
                if (other == vc || !(sharers & (1u << other)))
                    continue;
                for (CacheModel *l1 : l1ds_[other]) {
                    if (l1 && l1->invalidate(addr)) {
                        ++res.invalidations;
                        ++invalidations_;
                    }
                }
            }
            sharers = 1u << vc;
        } else {
            sharers |= 1u << vc;
        }
    }

    if (banks_.empty()) {
        // No L2 attached: every L1 miss goes to main memory.
        ++memoryAccesses_;
        res.wentToMemory = true;
        res.doneCycle = now + 4 + cfg_.memoryLatency;
        if (res.invalidations > 0)
            res.doneCycle += 6;
        return res;
    }

    const BankId bank = bankFor(addr);
    const unsigned hops = hopsTo(vc, slice, bank);
    // One access per cycle per bank, slots claimable out of order.
    const Cycles start = bankPort_[bank].schedule(now);

    ++accesses_;
    const AccessResult bank_res = banks_[bank].access(addr, is_write);
    // Table 3: hit delay = distance*2 + 4.
    Cycles done = start + hops * cfg_.l2DistanceCyclesPerHop +
                  cfg_.l2Bank.hitLatency;
    if (!bank_res.hit) {
        ++misses_;
        ++memoryAccesses_;
        res.wentToMemory = true;
        done += cfg_.memoryLatency;
    }
    if (res.invalidations > 0)
        done += 6; // invalidation round-trip before data is usable
    res.l2Hit = bank_res.hit;
    res.doneCycle = done;
#if SHARCH_OBS
    if (obs::enabled()) {
        auto &reg = obs::MetricsRegistry::instance();
        const CacheMetrics &m = cacheMetrics();
        reg.add(m.accesses);
        if (!bank_res.hit)
            reg.add(m.misses);
        if (res.invalidations > 0)
            reg.add(m.invalidations, res.invalidations);
        reg.observe(m.latency, static_cast<double>(done - now));
        obs::Tracer::instance().record(
            {bank_res.hit ? "l2_hit" : "l2_miss", "cache", start,
             done, obs::kPidCache, bank, hops, "hops"});
    }
#endif
    return res;
}

L2AccessResult
L2System::accessFunctional(VCoreId vc, Addr addr, bool is_write)
{
    // Mirror of access() minus ports and latency: the directory and
    // bank mutations below are copied from it line for line, so the
    // two paths cannot diverge architecturally.
    L2AccessResult res;
    const bool multi_vcore = placements_.size() > 1;
    const Addr line = lineOf(addr);

    if (multi_vcore) {
        std::uint32_t &sharers = directory_[line];
        if (is_write) {
            for (std::size_t other = 0; other < l1ds_.size(); ++other) {
                if (other == vc || !(sharers & (1u << other)))
                    continue;
                for (CacheModel *l1 : l1ds_[other]) {
                    if (l1 && l1->invalidate(addr)) {
                        ++res.invalidations;
                        ++invalidations_;
                    }
                }
            }
            sharers = 1u << vc;
        } else {
            sharers |= 1u << vc;
        }
    }

    if (banks_.empty()) {
        ++memoryAccesses_;
        res.wentToMemory = true;
        return res;
    }

    ++accesses_;
    const AccessResult bank_res =
        banks_[bankFor(addr)].access(addr, is_write);
    if (!bank_res.hit) {
        ++misses_;
        ++memoryAccesses_;
        res.wentToMemory = true;
    }
    res.l2Hit = bank_res.hit;
    return res;
}

std::uint64_t
L2System::stateDigest() const
{
    std::uint64_t h = kDigestSeed;
    for (const CacheModel &b : banks_)
        h = digestMix(h, b.stateDigest());
    // unordered_map iteration order is not deterministic across
    // containers with different insertion histories; sort by line.
    std::vector<std::pair<Addr, std::uint32_t>> dir(directory_.begin(),
                                                    directory_.end());
    std::sort(dir.begin(), dir.end());
    for (const auto &[line, sharers] : dir) {
        // Entries whose sharer mask went empty-equivalent still
        // compare: access() never erases, so both walks keep them.
        h = digestMix(h, line);
        h = digestMix(h, sharers);
    }
    return h;
}

bool
L2System::probeHit(Addr addr) const
{
    if (banks_.empty())
        return false;
    return banks_[bankFor(addr)].probe(addr);
}

void
L2System::prefill(VCoreId vc, Addr addr)
{
    if (banks_.empty())
        return;
    banks_[bankFor(addr)].access(addr, false);
    if (placements_.size() > 1)
        directory_[lineOf(addr)] |= 1u << vc;
}

std::size_t
L2System::flushBank(BankId bank)
{
    SHARCH_ASSERT(bank < banks_.size(), "bank id out of range");
    return banks_[bank].flushAll();
}

std::size_t
L2System::flushAll()
{
    std::size_t dirty = 0;
    for (auto &b : banks_)
        dirty += b.flushAll();
    directory_.clear();
    return dirty;
}

} // namespace sharch
