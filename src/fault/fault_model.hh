/**
 * @file
 * Deterministic fault injection for the Slice fabric.
 *
 * An IaaS provider leases Slices and L2 banks to paying tenants
 * (sections 3.5 and 7), so the hypervisor must have a story for the
 * chip degrading underneath live VCores: a Slice tile dies, a 64 KB
 * bank dies, or a mesh link between adjacent Slice tiles fails and
 * breaks the contiguity a VCore's operand network depends on.
 *
 * FaultModel produces the *schedule* of such events.  It follows the
 * same reproducibility discipline as TraceGenerator: the sequence is a
 * pure function of (seed, fabric geometry, spec) -- never of wall
 * clock, thread count, or iteration order -- so a degradation run can
 * be replayed bit-for-bit.  Random failures arrive with exponential
 * (MTBF-style) inter-arrival times in simulated cycles; an optional
 * MTTR schedules a matching heal event for each failure.  Explicit
 * fault sets (fixed tiles at cycle 0) cover directed tests.
 */

#ifndef SHARCH_FAULT_FAULT_MODEL_HH
#define SHARCH_FAULT_FAULT_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "noc/mesh.hh"

namespace sharch::fault {

/** Which fabric component an event hits. */
enum class FaultKind
{
    Slice, //!< a Slice tile (even mesh rows)
    Bank,  //!< a 64 KB L2 bank tile (odd mesh rows)
    Link,  //!< the horizontal mesh link right of a Slice tile
};

const char *faultKindName(FaultKind kind);

/**
 * Inverse of faultKindName() ("slice" / "bank" / "link"), for
 * rebuilding fault events from sharch-state-v1 checkpoint documents.
 * @return false when @p name is none of the three.
 */
bool parseFaultKind(const std::string &name, FaultKind *out);

/** One scheduled failure or repair. */
struct FaultEvent
{
    Cycles at = 0;   //!< simulated cycle the event fires
    FaultKind kind = FaultKind::Slice;
    Coord tile;      //!< chip coordinate (for Link: left endpoint)
    bool heal = false; //!< repair instead of failure

    bool operator==(const FaultEvent &) const = default;
};

/**
 * A parsed `--inject-faults` specification.
 *
 * Grammar (comma-separated entries, any order):
 *   seed=N        RNG seed for the random schedule (default 1)
 *   mtbf=N        mean cycles between random failures (0: none)
 *   count=N       number of random failures to schedule
 *   mttr=N        mean cycles to repair; each random failure gets a
 *                 heal event (0: failures are permanent)
 *   slice:R:C     explicit Slice failure at chip row R, column C
 *   bank:R:C      explicit bank failure
 *   link:R:C      explicit failure of the link (R,C)-(R,C+1)
 *
 * Explicit entries fire at cycle 0 in spec order, before any random
 * event.  Example: "seed=7,mtbf=100000,count=4,slice:0:3".
 */
struct FaultSpec
{
    std::uint64_t seed = 1;
    double mtbf = 0.0;
    unsigned count = 0;
    double mttr = 0.0;
    std::vector<FaultEvent> fixed;

    std::string error; //!< nonempty: parse failed

    bool ok() const { return error.empty(); }
    bool empty() const { return count == 0 && fixed.empty(); }
};

/** Parse a spec string (never throws; malformed input sets .error). */
FaultSpec parseFaultSpec(const std::string &text);

/**
 * The deterministic fault schedule for one chip.
 *
 * Construction expands the spec into a cycle-sorted event list.
 * Random targets are drawn uniformly over the tiles of the drawn
 * kind, weighted by how many tiles of each kind the geometry offers,
 * so a wide chip sees proportionally more Slice faults than link
 * faults.  Explicit (fixed) events are validated against the
 * geometry.
 */
class FaultModel
{
  public:
    /** @param width tiles per row; @param height chip rows (>= 2). */
    FaultModel(const FaultSpec &spec, int width, int height);

    /** The full schedule, sorted by cycle (ties keep spec order). */
    const std::vector<FaultEvent> &schedule() const
    {
        return schedule_;
    }

    /**
     * Consume and return every not-yet-delivered event with
     * at <= @p cycle.  Repeated calls advance a cursor, so a replay
     * loop can poll at its own cadence without double delivery.
     */
    std::vector<FaultEvent> eventsUpTo(Cycles cycle);

    /** Events not yet delivered through eventsUpTo(). */
    std::size_t pending() const
    {
        return schedule_.size() - cursor_;
    }

    /** Rewind the delivery cursor for a fresh replay. */
    void reset() { cursor_ = 0; }

  private:
    std::vector<FaultEvent> schedule_;
    std::size_t cursor_ = 0;
};

} // namespace sharch::fault

#endif // SHARCH_FAULT_FAULT_MODEL_HH
