#include "fault/fault_model.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/random.hh"

namespace sharch::fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Slice:
        return "slice";
      case FaultKind::Bank:
        return "bank";
      case FaultKind::Link:
        return "link";
    }
    return "?";
}

bool
parseFaultKind(const std::string &name, FaultKind *out)
{
    if (name == "slice")
        *out = FaultKind::Slice;
    else if (name == "bank")
        *out = FaultKind::Bank;
    else if (name == "link")
        *out = FaultKind::Link;
    else
        return false;
    return true;
}

namespace {

/** splitmix64 finalizer: decorrelates seed and geometry. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

bool
parseSpecU64(const std::string &text, std::uint64_t *out)
{
    if (text.empty() || text[0] == '-')
        return false;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
parseSpecDouble(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !std::isfinite(v) ||
        v < 0.0) {
        return false;
    }
    *out = v;
    return true;
}

/** Parse "kind:R:C" into a cycle-0 FaultEvent. */
bool
parseFixedEvent(const std::string &entry, FaultEvent *out)
{
    const std::size_t first = entry.find(':');
    const std::size_t second = entry.find(':', first + 1);
    if (first == std::string::npos || second == std::string::npos)
        return false;
    const std::string kind = entry.substr(0, first);
    FaultEvent ev;
    if (kind == "slice")
        ev.kind = FaultKind::Slice;
    else if (kind == "bank")
        ev.kind = FaultKind::Bank;
    else if (kind == "link")
        ev.kind = FaultKind::Link;
    else
        return false;
    std::uint64_t row = 0, col = 0;
    if (!parseSpecU64(entry.substr(first + 1, second - first - 1),
                      &row) ||
        !parseSpecU64(entry.substr(second + 1), &col)) {
        return false;
    }
    ev.tile = Coord{static_cast<int>(col), static_cast<int>(row)};
    *out = ev;
    return true;
}

} // namespace

FaultSpec
parseFaultSpec(const std::string &text)
{
    FaultSpec spec;
    std::size_t pos = 0;
    while (pos <= text.size() && spec.ok()) {
        const std::size_t comma = text.find(',', pos);
        const std::string entry =
            text.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        const std::size_t eq = entry.find('=');
        std::uint64_t v = 0;
        FaultEvent ev;
        if (entry.empty()) {
            spec.error = "empty fault spec entry";
        } else if (eq != std::string::npos) {
            const std::string key = entry.substr(0, eq);
            const std::string val = entry.substr(eq + 1);
            if (key == "seed" && parseSpecU64(val, &spec.seed)) {
            } else if (key == "mtbf" &&
                       parseSpecDouble(val, &spec.mtbf)) {
            } else if (key == "mttr" &&
                       parseSpecDouble(val, &spec.mttr)) {
            } else if (key == "count" && parseSpecU64(val, &v)) {
                spec.count = static_cast<unsigned>(v);
            } else {
                spec.error = "bad fault spec entry '" + entry + "'";
            }
        } else if (parseFixedEvent(entry, &ev)) {
            spec.fixed.push_back(ev);
        } else {
            spec.error = "bad fault spec entry '" + entry + "'";
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (spec.ok() && spec.count > 0 && spec.mtbf <= 0.0)
        spec.error = "count=N needs mtbf=N to space the failures";
    return spec;
}

FaultModel::FaultModel(const FaultSpec &spec, int width, int height)
{
    SHARCH_ASSERT(spec.ok(), "constructing from a bad spec: ",
                  spec.error);
    SHARCH_ASSERT(width >= 1 && height >= 2, "bad fabric geometry");

    const int slice_rows = (height + 1) / 2;
    const int bank_rows = height / 2;
    const std::uint64_t slice_tiles =
        std::uint64_t(slice_rows) * width;
    const std::uint64_t bank_tiles = std::uint64_t(bank_rows) * width;
    const std::uint64_t link_tiles =
        width > 1 ? std::uint64_t(slice_rows) * (width - 1) : 0;

    for (const FaultEvent &ev : spec.fixed) {
        const bool slice_row =
            ev.tile.y % 2 == 0 && ev.tile.y < height;
        const bool bank_row = ev.tile.y % 2 == 1 && ev.tile.y < height;
        const int max_col =
            ev.kind == FaultKind::Link ? width - 1 : width;
        const bool on_chip = ev.tile.y >= 0 && ev.tile.x >= 0 &&
                             ev.tile.x < max_col;
        SHARCH_ASSERT(on_chip &&
                          (ev.kind == FaultKind::Bank ? bank_row
                                                      : slice_row),
                      "fixed fault off-chip or on the wrong row kind");
        schedule_.push_back(ev);
    }

    // Random schedule: exponential inter-arrival, target kind drawn
    // proportionally to how many tiles of that kind exist, target
    // tile uniform within the kind.  Everything flows through one Rng
    // seeded from (seed, geometry), so the sequence is a pure
    // function of those inputs.
    Rng rng(mix64(spec.seed) ^ mix64(std::uint64_t(width) << 32 |
                                     std::uint64_t(height)));
    const std::uint64_t total_tiles =
        slice_tiles + bank_tiles + link_tiles;
    double clock = 0.0;
    std::vector<FaultEvent> random;
    for (unsigned i = 0; i < spec.count; ++i) {
        clock += std::max(1.0, rng.nextExponential(spec.mtbf));
        FaultEvent ev;
        ev.at = static_cast<Cycles>(clock);
        const std::uint64_t pick = rng.nextBounded(total_tiles);
        if (pick < slice_tiles) {
            ev.kind = FaultKind::Slice;
            ev.tile = Coord{static_cast<int>(pick % width),
                            static_cast<int>(pick / width) * 2};
        } else if (pick < slice_tiles + bank_tiles) {
            const std::uint64_t b = pick - slice_tiles;
            ev.kind = FaultKind::Bank;
            ev.tile = Coord{static_cast<int>(b % width),
                            static_cast<int>(b / width) * 2 + 1};
        } else {
            const std::uint64_t l = pick - slice_tiles - bank_tiles;
            ev.kind = FaultKind::Link;
            ev.tile = Coord{static_cast<int>(l % (width - 1)),
                            static_cast<int>(l / (width - 1)) * 2};
        }
        random.push_back(ev);
        if (spec.mttr > 0.0) {
            FaultEvent repair = ev;
            repair.heal = true;
            repair.at += static_cast<Cycles>(
                std::max(1.0, rng.nextExponential(spec.mttr)));
            random.push_back(repair);
        }
    }
    // Heal events interleave with later failures; stable sort keeps
    // the generation order for ties, so replays are bit-identical.
    std::stable_sort(random.begin(), random.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    schedule_.insert(schedule_.end(), random.begin(), random.end());
}

std::vector<FaultEvent>
FaultModel::eventsUpTo(Cycles cycle)
{
    std::vector<FaultEvent> out;
    while (cursor_ < schedule_.size() &&
           schedule_[cursor_].at <= cycle) {
        out.push_back(schedule_[cursor_++]);
    }
    return out;
}

} // namespace sharch::fault
