/**
 * @file
 * The two-stage rename machinery (section 3.2).
 *
 * Architectural registers rename first into a global logical space
 * shared across the Slices of a VCore (with a master-Slice broadcast
 * to resolve cross-Slice WAW/RAW within a fetch group), and second
 * into each Slice's Local Register File.  For timing we track, per
 * architectural register, which Slice produced the current value and
 * when it is ready; a consumer on another Slice pays the Scalar
 * Operand Network request/reply latency.  The broadcast step deepens
 * the front end as Slice count grows (the "Added Pipeline" component
 * of Fig. 10), which renameDepth() exposes.
 */

#ifndef SHARCH_UARCH_RENAME_HH
#define SHARCH_UARCH_RENAME_HH

#include <array>
#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace sharch {

/** Producer information for one architectural register. */
struct Producer
{
    Cycles readyCycle = 0;   //!< when the value is computed
    SliceId slice = 0;       //!< which Slice's LRF holds it
    SeqNum seq = 0;          //!< producing instruction, 0 = initial
};

/**
 * Front-end rename depth in pipeline stages for an s-Slice VCore:
 * a single Slice renames locally; grouped Slices add the send-to-master
 * and broadcast-correct steps (one extra stage each once the VCore
 * spans more than one/four Slices).
 */
inline unsigned
renameDepth(unsigned num_slices)
{
    SHARCH_DCHECK(num_slices >= 1, "need at least one Slice");
    if (num_slices == 1)
        return 1;
    if (num_slices <= 4)
        return 2;
    return 3;
}

/** Global RAT timing model: arch reg -> producer. */
class RenameState
{
  public:
    static constexpr unsigned kArchRegs = 32;

    RenameState();

    const Producer &
    lookup(RegIndex arch_reg) const
    {
        SHARCH_DCHECK(arch_reg < kArchRegs,
                      "architectural reg out of range");
        return table_[arch_reg];
    }

    /** Record that @p arch_reg is produced on @p slice at @p ready. */
    void
    define(RegIndex arch_reg, SliceId slice, Cycles ready, SeqNum seq)
    {
        SHARCH_DCHECK(arch_reg < kArchRegs,
                      "architectural reg out of range");
        table_[arch_reg] = Producer{ready, slice, seq};
    }

    /**
     * Mark every live register as resident on @p slice at @p ready --
     * the effect of the Register Flush instruction used when a VCore
     * sheds Slices (section 3.8).
     */
    void flushTo(SliceId slice, Cycles ready);

    void reset();

  private:
    std::array<Producer, kArchRegs> table_;
};

} // namespace sharch

#endif // SHARCH_UARCH_RENAME_HH
