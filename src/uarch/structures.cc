#include "uarch/structures.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sharch {

OccupancyLimiter::OccupancyLimiter(std::uint32_t capacity)
    : capacity_(capacity), releases_(capacity, 0)
{
    SHARCH_ASSERT(capacity > 0, "structure needs at least one entry");
}

std::uint32_t
OccupancyLimiter::occupancy(Cycles now) const
{
    const std::uint64_t n = std::min<std::uint64_t>(allocated_, capacity_);
    std::uint32_t live = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (releases_[i] > now)
            ++live;
    }
    return live;
}

void
OccupancyLimiter::reset()
{
    std::fill(releases_.begin(), releases_.end(), 0);
    head_ = 0;
    allocated_ = 0;
}

UnorderedOccupancy::UnorderedOccupancy(std::uint32_t capacity)
    : capacity_(capacity), releases_(capacity, 0)
{
    SHARCH_ASSERT(capacity > 0, "structure needs at least one entry");
}

void
UnorderedOccupancy::reset()
{
    size_ = 0;
}

UnitPort::UnitPort(std::uint32_t width) : width_(width)
{
    SHARCH_ASSERT(width > 0, "unit needs at least one port");
}

void
UnitPort::reset()
{
    busyCycle_ = 0;
    used_ = 0;
}

} // namespace sharch
