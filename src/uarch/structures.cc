#include "uarch/structures.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sharch {

OccupancyLimiter::OccupancyLimiter(std::uint32_t capacity)
    : capacity_(capacity), releases_(capacity, 0)
{
    SHARCH_ASSERT(capacity > 0, "structure needs at least one entry");
}

Cycles
OccupancyLimiter::allocConstraint() const
{
    if (allocated_ < capacity_)
        return 0;
    // The slot we are about to overwrite holds the release time of the
    // allocation `capacity_` steps ago.
    return releases_[head_];
}

void
OccupancyLimiter::allocate(Cycles release_cycle)
{
    releases_[head_] = release_cycle;
    // Branchy wrap instead of a modulo: capacities are arbitrary
    // (not power-of-two), and this runs once per committed
    // instruction per structure.
    if (++head_ == releases_.size())
        head_ = 0;
    ++allocated_;
}

std::uint32_t
OccupancyLimiter::occupancy(Cycles now) const
{
    const std::uint64_t n = std::min<std::uint64_t>(allocated_, capacity_);
    std::uint32_t live = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (releases_[i] > now)
            ++live;
    }
    return live;
}

void
OccupancyLimiter::reset()
{
    std::fill(releases_.begin(), releases_.end(), 0);
    head_ = 0;
    allocated_ = 0;
}

UnorderedOccupancy::UnorderedOccupancy(std::uint32_t capacity)
    : capacity_(capacity)
{
    SHARCH_ASSERT(capacity > 0, "structure needs at least one entry");
    releases_.reserve(capacity);
}

Cycles
UnorderedOccupancy::allocate(Cycles ready, Cycles release)
{
    // Drop entries already free at `ready`.
    while (!releases_.empty() && releases_.front() <= ready) {
        std::pop_heap(releases_.begin(), releases_.end(),
                      std::greater<>{});
        releases_.pop_back();
    }
    Cycles granted = ready;
    if (releases_.size() >= capacity_) {
        // Wait for the earliest release among live entries.
        granted = std::max(granted, releases_.front());
        std::pop_heap(releases_.begin(), releases_.end(),
                      std::greater<>{});
        releases_.pop_back();
    }
    releases_.push_back(std::max(release, granted));
    std::push_heap(releases_.begin(), releases_.end(),
                   std::greater<>{});
    return granted;
}

void
UnorderedOccupancy::reset()
{
    releases_.clear();
}

UnitPort::UnitPort(std::uint32_t width) : width_(width)
{
    SHARCH_ASSERT(width > 0, "unit needs at least one port");
}

Cycles
UnitPort::schedule(Cycles ready)
{
    if (ready > busyCycle_) {
        busyCycle_ = ready;
        used_ = 1;
        return ready;
    }
    if (ready == busyCycle_ && used_ < width_) {
        ++used_;
        return ready;
    }
    // The unit is saturated at `ready`; take the next free slot.
    if (used_ < width_ && busyCycle_ > ready) {
        ++used_;
        return busyCycle_;
    }
    ++busyCycle_;
    used_ = 1;
    return busyCycle_;
}

void
UnitPort::reset()
{
    busyCycle_ = 0;
    used_ = 0;
}

} // namespace sharch
