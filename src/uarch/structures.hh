/**
 * @file
 * Generic occupancy and port models for pipeline structures.
 *
 * OccupancyLimiter models a structure with a fixed number of entries
 * allocated in program order (ROB partition, issue window, LSQ bank,
 * LRF, store buffer, MSHRs): allocation k may not proceed before entry
 * (k - capacity) has been released.  UnitPort models a fully pipelined
 * unit that accepts one operation per cycle (an ALU, an LSU port, a
 * cache port).
 *
 * The allocate/schedule paths are defined inline: each committed
 * instruction touches several of these structures, and the streaming
 * pipeline made the call overhead of the out-of-line versions a
 * measurable share of end-to-end instr/s.  Grant semantics are
 * unchanged.
 */

#ifndef SHARCH_UARCH_STRUCTURES_HH
#define SHARCH_UARCH_STRUCTURES_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/scheduling.hh"
#include "common/types.hh"

namespace sharch {

/** Ring buffer of release times bounding structure occupancy. */
class OccupancyLimiter
{
  public:
    explicit OccupancyLimiter(std::uint32_t capacity);

    /**
     * Earliest cycle at which the next allocation may proceed given
     * occupancy (0 when the structure is not yet full).
     */
    Cycles
    allocConstraint() const
    {
        if (allocated_ < capacity_)
            return 0;
        // The slot we are about to overwrite holds the release time
        // of the allocation `capacity_` steps ago.
        return releases_[head_];
    }

    /** Record an allocation whose entry frees at @p release_cycle. */
    void
    allocate(Cycles release_cycle)
    {
        releases_[head_] = release_cycle;
        // Branchy wrap instead of a modulo: capacities are arbitrary
        // (not power-of-two), and this runs once per committed
        // instruction per structure.
        if (++head_ == releases_.size())
            head_ = 0;
        ++allocated_;
    }

    std::uint32_t capacity() const { return capacity_; }

    /** Entries currently accounted as live at cycle @p now. */
    std::uint32_t occupancy(Cycles now) const;

    void reset();

  private:
    std::uint32_t capacity_;
    std::vector<Cycles> releases_; //!< circular, size == capacity_
    std::size_t head_ = 0;         //!< next slot to overwrite
    std::uint64_t allocated_ = 0;
};

/**
 * A structure whose entries free *out of order* (issue windows, the
 * unordered LSQ banks of section 3.6, MSHRs).  An allocation that
 * finds the structure full waits for the earliest release, not the
 * oldest allocation.
 */
class UnorderedOccupancy
{
  public:
    explicit UnorderedOccupancy(std::uint32_t capacity);

    /**
     * Allocate an entry no earlier than @p ready that frees at
     * @p release.  @return the granted allocation cycle (>= ready).
     */
    Cycles
    allocate(Cycles ready, Cycles release)
    {
        // One pass over an unsorted array: drop entries already free
        // at `ready` while tracking the earliest release among the
        // survivors.  Capacities here are tiny (8..32 entries), so
        // the linear sweep beats the historical binary heap's
        // pop/push cascades -- and grants are identical: same eager
        // drop, same earliest-release wait when full.
        std::size_t n = 0;
        std::size_t min_idx = 0;
        Cycles min_release = ~Cycles{0};
        for (std::size_t i = 0; i < size_; ++i) {
            const Cycles r = releases_[i];
            if (r <= ready)
                continue;
            releases_[n] = r;
            if (r < min_release) {
                min_release = r;
                min_idx = n;
            }
            ++n;
        }
        Cycles granted = ready;
        if (n >= capacity_) {
            // Wait for the earliest release among live entries (all
            // survivors are > ready, so the max() is just the min).
            granted = min_release;
            releases_[min_idx] = releases_[--n];
        }
        releases_[n] = std::max(release, granted);
        size_ = n + 1;
        return granted;
    }

    std::uint32_t capacity() const { return capacity_; }

    void reset();

  private:
    std::uint32_t capacity_;
    /** Live entries' release times, unsorted; first size_ are valid. */
    std::vector<Cycles> releases_;
    std::size_t size_ = 0;
};

/** A fully pipelined unit accepting @p width operations per cycle. */
class UnitPort
{
  public:
    explicit UnitPort(std::uint32_t width = 1);

    /**
     * Schedule an operation that becomes ready at @p ready.
     * @return the cycle the unit actually accepts it.
     */
    Cycles
    schedule(Cycles ready)
    {
        if (ready > busyCycle_) {
            busyCycle_ = ready;
            used_ = 1;
            return ready;
        }
        if (ready == busyCycle_ && used_ < width_) {
            ++used_;
            return ready;
        }
        // The unit is saturated at `ready`; take the next free slot.
        if (used_ < width_ && busyCycle_ > ready) {
            ++used_;
            return busyCycle_;
        }
        ++busyCycle_;
        used_ = 1;
        return busyCycle_;
    }

    void reset();

  private:
    std::uint32_t width_;
    Cycles busyCycle_ = 0;   //!< cycle of the most recent acceptance
    std::uint32_t used_ = 0; //!< acceptances at busyCycle_
};

} // namespace sharch

#endif // SHARCH_UARCH_STRUCTURES_HH
