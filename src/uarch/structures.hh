/**
 * @file
 * Generic occupancy and port models for pipeline structures.
 *
 * OccupancyLimiter models a structure with a fixed number of entries
 * allocated in program order (ROB partition, issue window, LSQ bank,
 * LRF, store buffer, MSHRs): allocation k may not proceed before entry
 * (k - capacity) has been released.  UnitPort models a fully pipelined
 * unit that accepts one operation per cycle (an ALU, an LSU port, a
 * cache port).
 */

#ifndef SHARCH_UARCH_STRUCTURES_HH
#define SHARCH_UARCH_STRUCTURES_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/scheduling.hh"
#include "common/types.hh"

namespace sharch {

/** Ring buffer of release times bounding structure occupancy. */
class OccupancyLimiter
{
  public:
    explicit OccupancyLimiter(std::uint32_t capacity);

    /**
     * Earliest cycle at which the next allocation may proceed given
     * occupancy (0 when the structure is not yet full).
     */
    Cycles allocConstraint() const;

    /** Record an allocation whose entry frees at @p release_cycle. */
    void allocate(Cycles release_cycle);

    std::uint32_t capacity() const { return capacity_; }

    /** Entries currently accounted as live at cycle @p now. */
    std::uint32_t occupancy(Cycles now) const;

    void reset();

  private:
    std::uint32_t capacity_;
    std::vector<Cycles> releases_; //!< circular, size == capacity_
    std::size_t head_ = 0;         //!< next slot to overwrite
    std::uint64_t allocated_ = 0;
};

/**
 * A structure whose entries free *out of order* (issue windows, the
 * unordered LSQ banks of section 3.6, MSHRs).  An allocation that
 * finds the structure full waits for the earliest release, not the
 * oldest allocation.
 */
class UnorderedOccupancy
{
  public:
    explicit UnorderedOccupancy(std::uint32_t capacity);

    /**
     * Allocate an entry no earlier than @p ready that frees at
     * @p release.  @return the granted allocation cycle (>= ready).
     */
    Cycles allocate(Cycles ready, Cycles release);

    std::uint32_t capacity() const { return capacity_; }

    void reset();

  private:
    std::uint32_t capacity_;
    /** Min-heap of live entries' release times. */
    std::vector<Cycles> releases_;
};

/** A fully pipelined unit accepting @p width operations per cycle. */
class UnitPort
{
  public:
    explicit UnitPort(std::uint32_t width = 1);

    /**
     * Schedule an operation that becomes ready at @p ready.
     * @return the cycle the unit actually accepts it.
     */
    Cycles schedule(Cycles ready);

    void reset();

  private:
    std::uint32_t width_;
    Cycles busyCycle_ = 0;   //!< cycle of the most recent acceptance
    std::uint32_t used_ = 0; //!< acceptances at busyCycle_
};

} // namespace sharch

#endif // SHARCH_UARCH_STRUCTURES_HH
