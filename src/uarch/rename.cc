#include "uarch/rename.hh"

#include "common/logging.hh"

namespace sharch {

unsigned
renameDepth(unsigned num_slices)
{
    SHARCH_ASSERT(num_slices >= 1, "need at least one Slice");
    if (num_slices == 1)
        return 1;
    if (num_slices <= 4)
        return 2;
    return 3;
}

RenameState::RenameState() = default;

const Producer &
RenameState::lookup(RegIndex arch_reg) const
{
    SHARCH_ASSERT(arch_reg < kArchRegs, "architectural reg out of range");
    return table_[arch_reg];
}

void
RenameState::define(RegIndex arch_reg, SliceId slice, Cycles ready,
                    SeqNum seq)
{
    SHARCH_ASSERT(arch_reg < kArchRegs, "architectural reg out of range");
    table_[arch_reg] = Producer{ready, slice, seq};
}

void
RenameState::flushTo(SliceId slice, Cycles ready)
{
    for (auto &p : table_) {
        p.slice = slice;
        if (p.readyCycle < ready)
            p.readyCycle = ready;
    }
}

void
RenameState::reset()
{
    table_ = {};
}

} // namespace sharch
