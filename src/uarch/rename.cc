#include "uarch/rename.hh"

namespace sharch {

RenameState::RenameState() = default;

void
RenameState::flushTo(SliceId slice, Cycles ready)
{
    for (auto &p : table_) {
        p.slice = slice;
        if (p.readyCycle < ready)
            p.readyCycle = ready;
    }
}

void
RenameState::reset()
{
    table_ = {};
}

} // namespace sharch
