/**
 * @file
 * The distributed branch predictor of the Sharing Architecture.
 *
 * Each Slice owns a local bimodal predictor (2-bit counters indexed by
 * PC, section 3.1) and a BTB.  Because fetch is PC-interleaved, the
 * same PC is always fetched -- and therefore always predicted -- by the
 * same Slice, so effective predictor capacity grows with Slice count.
 * BTB entries are replicated ("fake" entries) into the other Slices of
 * a fetch group so that non-executing Slices can still redirect; we
 * model the capacity effect of that replication by charging each
 * branch one extra BTB entry per additional Slice in its fetch group.
 */

#ifndef SHARCH_UARCH_BRANCH_PREDICTOR_HH
#define SHARCH_UARCH_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace sharch {

/** Outcome of a front-end prediction. */
struct BranchPrediction
{
    bool predictTaken = false;
    bool btbHit = false;  //!< target known at fetch
    Addr target = 0;
};

/** Bimodal (2-bit saturating counter) direction predictor. */
class BimodalPredictor
{
  public:
    explicit BimodalPredictor(std::uint32_t entries);

    bool predict(Addr pc) const;
    void update(Addr pc, bool taken);

    /** Digest of every 2-bit counter (see CacheModel::stateDigest). */
    std::uint64_t stateDigest() const;

  private:
    std::vector<std::uint8_t> counters_;
    std::uint32_t mask_;
};

/** Direct-mapped, tagged branch target buffer. */
class Btb
{
  public:
    explicit Btb(std::uint32_t entries);

    /** Look up @p pc; returns true and fills @p target on a hit. */
    bool lookup(Addr pc, Addr &target) const;
    void update(Addr pc, Addr target);

    /** Digest of every (tag, target, valid) entry. */
    std::uint64_t stateDigest() const;

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        bool valid = false;
    };
    std::vector<Entry> entries_;
    std::uint32_t mask_;
};

/**
 * Per-Slice predictor state for one VCore.  Slice selection follows
 * the fetch interleave: PC pair p is predicted by Slice (p/8) mod s.
 */
class DistributedBranchPredictor
{
  public:
    DistributedBranchPredictor(unsigned num_slices,
                               std::uint32_t bimodal_entries,
                               std::uint32_t btb_entries);

    /** Which Slice fetches (and predicts) @p pc. */
    SliceId sliceFor(Addr pc) const;

    BranchPrediction predict(Addr pc) const;

    /** Train direction and target after resolution. */
    void update(Addr pc, bool taken, Addr target);

    unsigned numSlices() const
    { return static_cast<unsigned>(bimodal_.size()); }

    /** Digest over every Slice's bimodal table and BTB. */
    std::uint64_t stateDigest() const;

  private:
    std::vector<BimodalPredictor> bimodal_;
    std::vector<Btb> btb_;
};

} // namespace sharch

#endif // SHARCH_UARCH_BRANCH_PREDICTOR_HH
