#include "uarch/branch_predictor.hh"

#include "common/logging.hh"
#include "common/math_util.hh"

namespace sharch {

BimodalPredictor::BimodalPredictor(std::uint32_t entries)
    : counters_(entries, 1), mask_(entries - 1)
{
    SHARCH_ASSERT(entries > 0 && isPow2(entries),
                  "bimodal entries must be a power of two");
}

bool
BimodalPredictor::predict(Addr pc) const
{
    return counters_[(pc >> 2) & mask_] >= 2;
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    std::uint8_t &c = counters_[(pc >> 2) & mask_];
    if (taken) {
        if (c < 3)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

Btb::Btb(std::uint32_t entries) : entries_(entries), mask_(entries - 1)
{
    SHARCH_ASSERT(entries > 0 && isPow2(entries),
                  "BTB entries must be a power of two");
}

bool
Btb::lookup(Addr pc, Addr &target) const
{
    const Entry &e = entries_[(pc >> 2) & mask_];
    if (e.valid && e.tag == pc) {
        target = e.target;
        return true;
    }
    return false;
}

void
Btb::update(Addr pc, Addr target)
{
    Entry &e = entries_[(pc >> 2) & mask_];
    e.tag = pc;
    e.target = target;
    e.valid = true;
}

DistributedBranchPredictor::DistributedBranchPredictor(
    unsigned num_slices, std::uint32_t bimodal_entries,
    std::uint32_t btb_entries)
{
    SHARCH_ASSERT(num_slices >= 1, "need at least one Slice");
    bimodal_.reserve(num_slices);
    btb_.reserve(num_slices);
    for (unsigned i = 0; i < num_slices; ++i) {
        bimodal_.emplace_back(bimodal_entries);
        btb_.emplace_back(btb_entries);
    }
}

SliceId
DistributedBranchPredictor::sliceFor(Addr pc) const
{
    return static_cast<SliceId>((pc >> 3) % bimodal_.size());
}

BranchPrediction
DistributedBranchPredictor::predict(Addr pc) const
{
    const SliceId s = sliceFor(pc);
    BranchPrediction p;
    p.predictTaken = bimodal_[s].predict(pc);
    p.btbHit = btb_[s].lookup(pc, p.target);
    return p;
}

void
DistributedBranchPredictor::update(Addr pc, bool taken, Addr target)
{
    const SliceId s = sliceFor(pc);
    bimodal_[s].update(pc, taken);
    if (taken)
        btb_[s].update(pc, target);
}

std::uint64_t
BimodalPredictor::stateDigest() const
{
    std::uint64_t h = kDigestSeed;
    for (std::uint8_t c : counters_)
        h = digestMix(h, c);
    return h;
}

std::uint64_t
Btb::stateDigest() const
{
    std::uint64_t h = kDigestSeed;
    for (const Entry &e : entries_) {
        h = digestMix(h, e.valid ? 1u : 0u);
        if (!e.valid)
            continue;
        h = digestMix(h, e.tag);
        h = digestMix(h, e.target);
    }
    return h;
}

std::uint64_t
DistributedBranchPredictor::stateDigest() const
{
    std::uint64_t h = kDigestSeed;
    for (std::size_t s = 0; s < bimodal_.size(); ++s) {
        h = digestMix(h, bimodal_[s].stateDigest());
        h = digestMix(h, btb_[s].stateDigest());
    }
    return h;
}

} // namespace sharch
