/**
 * @file
 * Table 1 of the paper: which intra-core structures are replicated per
 * Slice and which are partitioned across Slices when Slices are
 * grouped into a VCore.
 *
 * Partitioned structures scale their aggregate capacity with Slice
 * count; replicated structures are sized for the largest VCore and
 * duplicated in every Slice.  The timing model and the area model both
 * consult this policy (aggregate capacities, per-Slice areas).
 */

#ifndef SHARCH_UARCH_STRUCTURE_POLICY_HH
#define SHARCH_UARCH_STRUCTURE_POLICY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sharch {

/** The structures Table 1 classifies. */
enum class CoreStructure
{
    BranchPredictor,
    Btb,
    Scoreboard,
    IssueWindow,
    LoadQueue,
    StoreQueue,
    Rob,
    LocalRat,
    GlobalRat,
    PhysicalRegisterFile,
    NumStructures
};

/** Replication policy per Table 1. */
enum class SharingPolicy { Replicated, Partitioned };

/** Printable structure name. */
const char *coreStructureName(CoreStructure s);

/** The paper's Table 1 classification. */
SharingPolicy sharingPolicy(CoreStructure s);

/**
 * Aggregate capacity of a structure in an s-Slice VCore given its
 * per-Slice capacity: partitioned structures scale with s, replicated
 * ones do not.
 */
std::uint64_t aggregateCapacity(CoreStructure s,
                                std::uint64_t per_slice_capacity,
                                unsigned num_slices);

/** All structures with their policies (for reports and tests). */
struct StructurePolicyRow
{
    CoreStructure structure;
    SharingPolicy policy;
};
std::vector<StructurePolicyRow> structurePolicyTable();

} // namespace sharch

#endif // SHARCH_UARCH_STRUCTURE_POLICY_HH
