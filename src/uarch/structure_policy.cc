#include "uarch/structure_policy.hh"

#include "common/logging.hh"

namespace sharch {

const char *
coreStructureName(CoreStructure s)
{
    switch (s) {
      case CoreStructure::BranchPredictor: return "Branch Predictor";
      case CoreStructure::Btb: return "BTB";
      case CoreStructure::Scoreboard: return "Scoreboard";
      case CoreStructure::IssueWindow: return "Issue Window";
      case CoreStructure::LoadQueue: return "Load Queue";
      case CoreStructure::StoreQueue: return "Store Queue";
      case CoreStructure::Rob: return "ROB";
      case CoreStructure::LocalRat: return "Local RAT";
      case CoreStructure::GlobalRat: return "Global RAT";
      case CoreStructure::PhysicalRegisterFile: return "Physical RF";
      default: return "unknown";
    }
}

SharingPolicy
sharingPolicy(CoreStructure s)
{
    // Table 1: BTB, Scoreboard, Local RAT and Global RAT are
    // replicated in every Slice (each Slice needs its own copy to
    // fetch/rename locally); the branch predictor, issue window, load
    // and store queues, ROB and physical register file are partitioned
    // so aggregate capacity grows with Slice count.
    switch (s) {
      case CoreStructure::Btb:
      case CoreStructure::Scoreboard:
      case CoreStructure::LocalRat:
      case CoreStructure::GlobalRat:
        return SharingPolicy::Replicated;
      case CoreStructure::BranchPredictor:
      case CoreStructure::IssueWindow:
      case CoreStructure::LoadQueue:
      case CoreStructure::StoreQueue:
      case CoreStructure::Rob:
      case CoreStructure::PhysicalRegisterFile:
        return SharingPolicy::Partitioned;
      default:
        SHARCH_PANIC("unknown core structure");
    }
}

std::uint64_t
aggregateCapacity(CoreStructure s, std::uint64_t per_slice_capacity,
                  unsigned num_slices)
{
    SHARCH_ASSERT(num_slices >= 1, "need at least one Slice");
    if (sharingPolicy(s) == SharingPolicy::Partitioned)
        return per_slice_capacity * num_slices;
    return per_slice_capacity;
}

std::vector<StructurePolicyRow>
structurePolicyTable()
{
    std::vector<StructurePolicyRow> rows;
    for (int i = 0;
         i < static_cast<int>(CoreStructure::NumStructures); ++i) {
        const auto s = static_cast<CoreStructure>(i);
        rows.push_back(StructurePolicyRow{s, sharingPolicy(s)});
    }
    return rows;
}

} // namespace sharch
