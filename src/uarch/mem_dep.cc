#include "uarch/mem_dep.hh"

#include "common/logging.hh"
#include "common/math_util.hh"

namespace sharch {

MemDepTracker::MemDepTracker(std::size_t window)
    : window_(window), ring_(ceilPow2(window)), mask_(ring_.size() - 1)
{
    SHARCH_ASSERT(window > 0, "window must be nonempty");
}

void
MemDepTracker::recordStore(Addr addr, SeqNum seq, Cycles addr_ready,
                           Cycles data_ready)
{
    ring_[head_] = StoreEntry{addr >> 3, seq, addr_ready, data_ready};
    head_ = (head_ + 1) & mask_;
    if (live_ < window_)
        ++live_;
}

MemDepResult
MemDepTracker::queryLoad(Addr addr, SeqNum load_seq) const
{
    MemDepResult res;
    const Addr word = addr >> 3;
    // Scan newest to oldest; the first (youngest) older store wins.
    for (std::size_t i = 0; i < live_; ++i) {
        const std::size_t idx = (head_ + ring_.size() - 1 - i) & mask_;
        const StoreEntry &e = ring_[idx];
        if (e.word == word && e.seq < load_seq) {
            res.conflict = true;
            res.storeAddrReady = e.addrReady;
            res.storeDataReady = e.dataReady;
            res.storeSeq = e.seq;
            return res;
        }
    }
    return res;
}

void
MemDepTracker::reset()
{
    for (auto &e : ring_)
        e = StoreEntry{};
    head_ = 0;
    live_ = 0;
}

} // namespace sharch
