#include "uarch/mem_dep.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace sharch {

namespace {

/** A word no real store record can carry: addresses are word indices
 *  (addr >> 3), so the all-ones pattern is unreachable. */
constexpr Addr kNoWord = ~Addr{0};

} // namespace

MemDepTracker::MemDepTracker(std::size_t window)
    : window_(window), words_(ceilPow2(window), kNoWord),
      ring_(words_.size()), mask_(words_.size() - 1)
{
    SHARCH_ASSERT(window > 0, "window must be nonempty");
}

MemDepResult
MemDepTracker::scanLoad(Addr word, SeqNum load_seq) const
{
    MemDepResult res;
    // Scan newest to oldest; the first (youngest) older store wins.
    // The common case matches nothing, so the hot sweep touches only
    // the dense word ring (empty slots hold kNoWord, which never
    // compares equal); payload loads happen only on a candidate hit.
    for (std::size_t i = 0; i < live_; ++i) {
        const std::size_t idx = (head_ + words_.size() - 1 - i) & mask_;
        if (words_[idx] != word)
            continue;
        const StoreEntry &e = ring_[idx];
        if (e.seq < load_seq) {
            res.conflict = true;
            res.storeAddrReady = e.addrReady;
            res.storeDataReady = e.dataReady;
            res.storeSeq = e.seq;
            return res;
        }
    }
    return res;
}

std::uint64_t
MemDepTracker::architecturalDigest() const
{
    std::uint64_t h = kDigestSeed;
    h = digestMix(h, live_);
    // Newest to oldest, exactly the range queryLoad scans.
    for (std::size_t i = 0; i < live_; ++i) {
        const std::size_t idx = (head_ + words_.size() - 1 - i) & mask_;
        h = digestMix(h, words_[idx]);
        h = digestMix(h, ring_[idx].seq);
    }
    return h;
}

void
MemDepTracker::reset()
{
    std::fill(words_.begin(), words_.end(), kNoWord);
    for (auto &e : ring_)
        e = StoreEntry{};
    head_ = 0;
    live_ = 0;
    filter_.fill(0);
}

} // namespace sharch
