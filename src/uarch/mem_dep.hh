/**
 * @file
 * Memory dependence tracking for the distributed, unordered LSQ
 * (section 3.6).
 *
 * The Sharing Architecture sorts loads and stores to the Slice that
 * owns their address, keeps age-tagged unordered LSQ banks, lets loads
 * issue speculatively, and detects violations when a committing store
 * finds a younger load to the same address that already executed.
 * MemDepTracker answers the two questions the timing model needs when
 * it reaches a load in program order:
 *
 *  - forwarding: is there an older store to the same (8-byte) word
 *    still in flight whose data can be bypassed from the LSQ?
 *  - violation: did this load issue before some older store to the
 *    same address had computed its address (a premature speculative
 *    load that the committing store will squash)?
 */

#ifndef SHARCH_UARCH_MEM_DEP_HH
#define SHARCH_UARCH_MEM_DEP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace sharch {

/** What a load finds among older in-flight stores. */
struct MemDepResult
{
    bool conflict = false;       //!< an older store to the same word
    Cycles storeAddrReady = 0;   //!< when that store's address resolved
    Cycles storeDataReady = 0;   //!< when its data is forwardable
    SeqNum storeSeq = 0;
};

/**
 * Sliding window of recent in-flight stores.
 *
 * The ring is allocated at the next power of two above the requested
 * window so the per-store/per-load index math is a mask instead of an
 * integer divide; only the youngest @p window entries are ever
 * scanned, so a non-power-of-two window behaves exactly as a ring of
 * that precise size would (covered by tests).
 */
class MemDepTracker
{
  public:
    /** @param window how many recent stores stay searchable (an LSQ
     *                bank's worth of stores). */
    explicit MemDepTracker(std::size_t window = 32);

    /** Record a store whose address resolves at @p addr_ready and data
     *  at @p data_ready. */
    void recordStore(Addr addr, SeqNum seq, Cycles addr_ready,
                     Cycles data_ready);

    /** Query the youngest older store to the same 8-byte word. */
    MemDepResult queryLoad(Addr addr, SeqNum load_seq) const;

    void reset();

  private:
    struct StoreEntry
    {
        SeqNum seq = 0;
        Cycles addrReady = 0;
        Cycles dataReady = 0;
    };

    std::size_t window_; //!< searchable depth (as requested)
    /** Store words separate from the payload: queryLoad scans every
     *  word on every load and almost always matches none, so the
     *  word sweep should touch one dense array, not stride through
     *  32-byte entries. */
    std::vector<Addr> words_;      //!< pow2-sized ring of store words
    std::vector<StoreEntry> ring_; //!< parallel payload ring
    std::size_t mask_;   //!< ring_.size() - 1
    std::size_t head_ = 0;
    std::size_t live_ = 0;
};

} // namespace sharch

#endif // SHARCH_UARCH_MEM_DEP_HH
