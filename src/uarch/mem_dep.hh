/**
 * @file
 * Memory dependence tracking for the distributed, unordered LSQ
 * (section 3.6).
 *
 * The Sharing Architecture sorts loads and stores to the Slice that
 * owns their address, keeps age-tagged unordered LSQ banks, lets loads
 * issue speculatively, and detects violations when a committing store
 * finds a younger load to the same address that already executed.
 * MemDepTracker answers the two questions the timing model needs when
 * it reaches a load in program order:
 *
 *  - forwarding: is there an older store to the same (8-byte) word
 *    still in flight whose data can be bypassed from the LSQ?
 *  - violation: did this load issue before some older store to the
 *    same address had computed its address (a premature speculative
 *    load that the committing store will squash)?
 */

#ifndef SHARCH_UARCH_MEM_DEP_HH
#define SHARCH_UARCH_MEM_DEP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace sharch {

/** What a load finds among older in-flight stores. */
struct MemDepResult
{
    bool conflict = false;       //!< an older store to the same word
    Cycles storeAddrReady = 0;   //!< when that store's address resolved
    Cycles storeDataReady = 0;   //!< when its data is forwardable
    SeqNum storeSeq = 0;
};

/**
 * Sliding window of recent in-flight stores.
 *
 * The ring is allocated at the next power of two above the requested
 * window so the per-store/per-load index math is a mask instead of an
 * integer divide; only the youngest @p window entries are ever
 * scanned, so a non-power-of-two window behaves exactly as a ring of
 * that precise size would (covered by tests).
 */
class MemDepTracker
{
  public:
    /** @param window how many recent stores stay searchable (an LSQ
     *                bank's worth of stores). */
    explicit MemDepTracker(std::size_t window = 32);

    /** Record a store whose address resolves at @p addr_ready and data
     *  at @p data_ready. */
    void
    recordStore(Addr addr, SeqNum seq, Cycles addr_ready,
                Cycles data_ready)
    {
        // Keep the counting filter in step with the searchable
        // window: the oldest live entry ages out of scan range on
        // this insert (with a pow2-rounded ring that slot is not
        // necessarily the one being overwritten).
        if (live_ == window_) {
            const std::size_t out = (head_ - window_) & mask_;
            --filter_[filterSlot(words_[out])];
        }
        const Addr word = addr >> 3;
        ++filter_[filterSlot(word)];
        words_[head_] = word;
        ring_[head_] = StoreEntry{seq, addr_ready, data_ready};
        head_ = (head_ + 1) & mask_;
        if (live_ < window_)
            ++live_;
    }

    /**
     * Query the youngest older store to the same 8-byte word.  The
     * common case matches nothing, and the counting filter proves it
     * without touching the ring: a zero count for the word's slot
     * means no live store can match (no false negatives; a collision
     * merely falls through to the exact scan).
     */
    MemDepResult
    queryLoad(Addr addr, SeqNum load_seq) const
    {
        const Addr word = addr >> 3;
        if (filter_[filterSlot(word)] == 0)
            return {};
        return scanLoad(word, load_seq);
    }

    void reset();

    /**
     * Digest of the *architectural* window contents: the searchable
     * (word, seq) pairs in age order.  Cycle payloads (addrReady /
     * dataReady) are deliberately excluded -- they are timing state,
     * which a functional fast-forward records as zero; conflict
     * *detection* depends only on words and sequence numbers.
     */
    std::uint64_t architecturalDigest() const;

  private:
    struct StoreEntry
    {
        SeqNum seq = 0;
        Cycles addrReady = 0;
        Cycles dataReady = 0;
    };

    /** Filter slot for a store word (mix so striding patterns spread). */
    static std::size_t
    filterSlot(Addr word)
    {
        return (word ^ (word >> 8)) & (kFilterSlots - 1);
    }

    /** Exact newest-to-oldest ring scan behind the filter. */
    MemDepResult scanLoad(Addr word, SeqNum load_seq) const;

    static constexpr std::size_t kFilterSlots = 256;

    std::size_t window_; //!< searchable depth (as requested)
    /** Store words separate from the payload: queryLoad scans every
     *  word on every load and almost always matches none, so the
     *  word sweep should touch one dense array, not stride through
     *  32-byte entries. */
    std::vector<Addr> words_;      //!< pow2-sized ring of store words
    std::vector<StoreEntry> ring_; //!< parallel payload ring
    std::size_t mask_;   //!< ring_.size() - 1
    std::size_t head_ = 0;
    std::size_t live_ = 0;
    /** Live-store count per filter slot; u16 so any window fits. */
    std::array<std::uint16_t, kFilterSlots> filter_{};
};

} // namespace sharch

#endif // SHARCH_UARCH_MEM_DEP_HH
