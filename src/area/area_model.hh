/**
 * @file
 * Area model of a Sharing Architecture Slice, L2 bank, and VCore.
 *
 * The paper implements the Slice in synthesizable Verilog, synthesizes
 * it with the Synopsys flow at TSMC 45 nm, and reports the component
 * breakdown in Figures 10 (without L2) and 11 (with one 64 KB bank).
 * We reproduce that breakdown analytically: SRAM structures come from
 * CactiLite, and the non-SRAM logic components are fitted so the base
 * Slice configuration reproduces the published percentages.
 *
 * Every downstream experiment (performance/area metrics, market costs)
 * consumes areas through this class.
 */

#ifndef SHARCH_AREA_AREA_MODEL_HH
#define SHARCH_AREA_AREA_MODEL_HH

#include <array>
#include <string>
#include <vector>

#include "config/sim_config.hh"

namespace sharch {

/** Every area-bearing component of a Slice (Fig. 10). */
enum class SliceComponent
{
    L1ICache,
    L1DCache,
    InstructionBuffer,
    Lsq,
    Rob,
    RegisterFile,
    BtbPredictor,
    IssueWindow,
    Multiplier,
    Alus,
    // --- components below exist only to support sharing (Fig. 10's
    //     "Sharing Overhead" wedge aggregates them) ---
    GlobalRename,
    LocalRename,
    Routers,
    Waitlist,
    Scoreboard,
    AddedPipeline,
    NumComponents
};

/** Printable component name matching the paper's figure labels. */
const char *sliceComponentName(SliceComponent c);

/** True for components that exist only to support Slice sharing. */
bool isSharingOverhead(SliceComponent c);

/** One row of an area breakdown. */
struct AreaEntry
{
    std::string name;
    double areaUm2 = 0.0;
    double percent = 0.0;
};

/** Area of Slices, banks, VCores, and the published breakdowns. */
class AreaModel
{
  public:
    explicit AreaModel(const SimConfig &cfg = SimConfig{});

    /** Area of one named component under the current config. */
    double componentAreaUm2(SliceComponent c) const;

    /** Total area of one Slice (no L2) in um^2. */
    double sliceAreaUm2() const;

    /** Area of one 64 KB (configurable) L2 bank in um^2. */
    double l2BankAreaUm2() const;

    /** Area of a VCore with the given composition. */
    double vcoreAreaUm2(unsigned num_slices, unsigned num_banks) const;

    /** Same, in mm^2. */
    double vcoreAreaMm2(unsigned num_slices, unsigned num_banks) const;

    /**
     * Fraction of the Slice devoted to sharing support -- the paper's
     * headline "Sharing Overhead" figure (~8% without L2, ~5% with).
     */
    double sharingOverheadFraction(bool include_l2_bank) const;

    /**
     * Component breakdown as in Fig. 10 (@p include_l2_bank == false)
     * or Fig. 11 (true; adds one L2 bank row). Percentages sum to 100.
     */
    std::vector<AreaEntry> breakdown(bool include_l2_bank) const;

  private:
    SimConfig cfg_;
    std::array<double, static_cast<std::size_t>(
        SliceComponent::NumComponents)> areas_{};
};

} // namespace sharch

#endif // SHARCH_AREA_AREA_MODEL_HH
