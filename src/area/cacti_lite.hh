/**
 * @file
 * CactiLite: an analytical SRAM/cache area model at the 45 nm node.
 *
 * The paper derives cache sizes, timing and power with CACTI 6.0 at
 * 45 nm (section 5.1).  CACTI itself is a large external tool; this
 * module implements the small slice of it the experiments consume --
 * the area of an SRAM array as a function of capacity, associativity,
 * block size and port count -- using the standard decomposition into
 * cell area, tag overhead, and peripheral (decoder/sense-amp) overhead.
 *
 * Constants are calibrated so that the published anchor points hold:
 *  - a 16 KB 2-way cache (L1) is 24% of a Slice's logic area (Fig. 10),
 *  - a 64 KB 4-way bank is about half a Slice, preserving the paper's
 *    equal-area market anchor "1 Slice costs the same as 128 KB Cache".
 */

#ifndef SHARCH_AREA_CACTI_LITE_HH
#define SHARCH_AREA_CACTI_LITE_HH

#include <cstdint>

namespace sharch {

/** Parameters of one SRAM array / cache structure. */
struct SramSpec
{
    std::uint64_t dataBytes = 0;
    std::uint32_t blockBytes = 64; //!< tag granularity; 0 = tagless RAM
    std::uint32_t associativity = 1;
    std::uint32_t readPorts = 1;
    std::uint32_t writePorts = 1;
    std::uint32_t tagBits = 30;    //!< tag width per block when tagged
};

/** Analytical area model at 45 nm. */
class CactiLite
{
  public:
    /** 6T SRAM cell area at 45 nm in um^2 (ITRS-style value). */
    static constexpr double kCellUm2 = 0.35;

    /** Area in um^2 of the given array, including tags and periphery. */
    static double areaUm2(const SramSpec &spec);

    /** Convenience: area of a tagged cache. */
    static double cacheAreaUm2(std::uint64_t size_bytes,
                               std::uint32_t block_bytes,
                               std::uint32_t associativity);

    /** Convenience: area of a tagless RAM (register file, buffers). */
    static double ramAreaUm2(std::uint64_t size_bytes,
                             std::uint32_t read_ports = 1,
                             std::uint32_t write_ports = 1);

    /**
     * Access latency in cycles for a cache of the given capacity,
     * matching the paper's Table 3 anchors (16 KB -> 3 cycles,
     * 64 KB bank -> 4 cycles base).
     */
    static std::uint64_t accessCycles(std::uint64_t size_bytes);
};

} // namespace sharch

#endif // SHARCH_AREA_CACTI_LITE_HH
