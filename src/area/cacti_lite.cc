#include "area/cacti_lite.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace sharch {

namespace {

/** Multi-ported cells grow roughly quadratically with total ports. */
double
portFactor(std::uint32_t read_ports, std::uint32_t write_ports)
{
    const double ports = read_ports + write_ports;
    // A 1R1W cell is the baseline; each extra port adds wordlines and
    // bitlines, growing both cell dimensions.
    const double extra = ports - 2.0;
    return extra <= 0.0 ? 1.0 : 1.0 + 0.45 * extra + 0.05 * extra * extra;
}

/** Peripheral overhead shrinks (relatively) as arrays grow. */
double
peripheryFactor(std::uint64_t bits)
{
    // Small arrays are decoder/sense-amp dominated; big arrays approach
    // the cell-limited floor.  Calibrated so a 16 KB 2-way L1 and a
    // 64 KB 4-way L2 bank land on the paper's Fig. 10/11 proportions
    // (L1 = 24% of a Slice, one bank = 35% of Slice + bank).
    const double kb = static_cast<double>(bits) / 1024.0;
    const double knee = kb / 98.3;
    return 1.1 + 3.3 / (1.0 + knee * knee);
}

} // namespace

double
CactiLite::areaUm2(const SramSpec &spec)
{
    SHARCH_ASSERT(spec.dataBytes > 0, "empty SRAM array");
    double bits = static_cast<double>(spec.dataBytes) * 8.0;
    if (spec.blockBytes > 0 && spec.associativity > 0) {
        const double blocks =
            static_cast<double>(spec.dataBytes) / spec.blockBytes;
        bits += blocks * spec.tagBits;
        // Way comparators / mux overhead per extra way.
        bits *= 1.0 + 0.02 * (spec.associativity > 1
                                  ? floorLog2(spec.associativity)
                                  : 0);
    }
    const double cell = kCellUm2 *
                        portFactor(spec.readPorts, spec.writePorts);
    return bits * cell *
           peripheryFactor(static_cast<std::uint64_t>(bits));
}

double
CactiLite::cacheAreaUm2(std::uint64_t size_bytes,
                        std::uint32_t block_bytes,
                        std::uint32_t associativity)
{
    SramSpec spec;
    spec.dataBytes = size_bytes;
    spec.blockBytes = block_bytes;
    spec.associativity = associativity;
    return areaUm2(spec);
}

double
CactiLite::ramAreaUm2(std::uint64_t size_bytes, std::uint32_t read_ports,
                      std::uint32_t write_ports)
{
    SramSpec spec;
    spec.dataBytes = size_bytes;
    spec.blockBytes = 0; // tagless
    spec.readPorts = read_ports;
    spec.writePorts = write_ports;
    return areaUm2(spec);
}

std::uint64_t
CactiLite::accessCycles(std::uint64_t size_bytes)
{
    // Anchored to Table 3: 16 KB -> 3 cycles, 64 KB -> 4 cycles.
    if (size_bytes <= 16 * 1024)
        return 3;
    if (size_bytes <= 64 * 1024)
        return 4;
    if (size_bytes <= 256 * 1024)
        return 5;
    if (size_bytes <= 1024 * 1024)
        return 6;
    return 7;
}

} // namespace sharch
