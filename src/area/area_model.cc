#include "area/area_model.hh"

#include "area/cacti_lite.hh"
#include "common/logging.hh"

namespace sharch {

namespace {

constexpr std::size_t kNumComponents =
    static_cast<std::size_t>(SliceComponent::NumComponents);

/**
 * Published Fig. 10 weights (percent of a base Slice without L2).
 * The "Sharing Overhead 8%" wedge in the figure is the sum of the
 * GlobalRename..AddedPipeline entries below.  AddedPipeline is shown
 * as 0% (it rounds to zero); we carry a small non-zero area for it.
 */
constexpr std::array<double, kNumComponents> kFig10Weights = {
    24.0, // L1ICache
    24.0, // L1DCache
    11.0, // InstructionBuffer
    8.0,  // Lsq
    6.0,  // Rob
    6.0,  // RegisterFile
    4.0,  // BtbPredictor
    4.0,  // IssueWindow
    2.0,  // Multiplier
    1.0,  // Alus
    1.0,  // GlobalRename
    2.0,  // LocalRename
    2.0,  // Routers
    1.0,  // Waitlist
    2.0,  // Scoreboard
    0.2,  // AddedPipeline (rounds to 0% in the paper)
};

double
weightSum()
{
    double s = 0.0;
    for (double w : kFig10Weights)
        s += w;
    return s;
}

} // namespace

const char *
sliceComponentName(SliceComponent c)
{
    switch (c) {
      case SliceComponent::L1ICache: return "16 KB 2-way L1 Icache";
      case SliceComponent::L1DCache: return "16 KB 2-way L1 Dcache";
      case SliceComponent::InstructionBuffer: return "Instruction Buffer";
      case SliceComponent::Lsq: return "LSQ";
      case SliceComponent::Rob: return "ROB";
      case SliceComponent::RegisterFile: return "Register File";
      case SliceComponent::BtbPredictor: return "BTB&Predictor";
      case SliceComponent::IssueWindow: return "Issue Window";
      case SliceComponent::Multiplier: return "Multiplier";
      case SliceComponent::Alus: return "ALUs";
      case SliceComponent::GlobalRename: return "Global Rename";
      case SliceComponent::LocalRename: return "Local Rename";
      case SliceComponent::Routers: return "Routers";
      case SliceComponent::Waitlist: return "Waitlist";
      case SliceComponent::Scoreboard: return "Scoreboard";
      case SliceComponent::AddedPipeline: return "Added Pipeline";
      default: return "unknown";
    }
}

bool
isSharingOverhead(SliceComponent c)
{
    switch (c) {
      case SliceComponent::GlobalRename:
      case SliceComponent::LocalRename:
      case SliceComponent::Routers:
      case SliceComponent::Waitlist:
      case SliceComponent::Scoreboard:
      case SliceComponent::AddedPipeline:
        return true;
      default:
        return false;
    }
}

AreaModel::AreaModel(const SimConfig &cfg) : cfg_(cfg)
{
    // SRAM components come straight from CactiLite under the current
    // configuration.
    const double l1d = CactiLite::cacheAreaUm2(
        cfg_.l1d.sizeBytes, cfg_.l1d.blockBytes, cfg_.l1d.associativity);
    const double l1i = CactiLite::cacheAreaUm2(
        cfg_.l1i.sizeBytes, cfg_.l1i.blockBytes, cfg_.l1i.associativity);

    // Non-SRAM logic is fitted against the *base* Slice so the Fig. 10
    // percentages are reproduced exactly at the published design point.
    const SimConfig base;
    const double baseL1d = CactiLite::cacheAreaUm2(
        base.l1d.sizeBytes, base.l1d.blockBytes, base.l1d.associativity);
    const double baseSlice =
        baseL1d * weightSum() /
        kFig10Weights[static_cast<std::size_t>(SliceComponent::L1DCache)];

    for (std::size_t i = 0; i < kNumComponents; ++i)
        areas_[i] = baseSlice * kFig10Weights[i] / weightSum();
    areas_[static_cast<std::size_t>(SliceComponent::L1DCache)] = l1d;
    areas_[static_cast<std::size_t>(SliceComponent::L1ICache)] = l1i;

    // Structures whose capacity the configuration can change scale
    // linearly with their entry counts relative to the base config.
    auto scale = [&](SliceComponent c, double ratio) {
        areas_[static_cast<std::size_t>(c)] *= ratio;
    };
    const SliceConfig &s = cfg_.slice;
    const SliceConfig &bs = base.slice;
    scale(SliceComponent::IssueWindow,
          double(s.issueWindowSize) / bs.issueWindowSize);
    scale(SliceComponent::Lsq, double(s.lsqSize) / bs.lsqSize);
    scale(SliceComponent::Rob, double(s.robSize) / bs.robSize);
    scale(SliceComponent::RegisterFile,
          double(s.numLocalRegisters) / bs.numLocalRegisters);
    scale(SliceComponent::BtbPredictor,
          0.5 * (double(s.bimodalEntries) / bs.bimodalEntries +
                 double(s.btbEntries) / bs.btbEntries));
}

double
AreaModel::componentAreaUm2(SliceComponent c) const
{
    SHARCH_ASSERT(c < SliceComponent::NumComponents, "bad component");
    return areas_[static_cast<std::size_t>(c)];
}

double
AreaModel::sliceAreaUm2() const
{
    double total = 0.0;
    for (double a : areas_)
        total += a;
    return total;
}

double
AreaModel::l2BankAreaUm2() const
{
    return CactiLite::cacheAreaUm2(cfg_.l2Bank.sizeBytes,
                                   cfg_.l2Bank.blockBytes,
                                   cfg_.l2Bank.associativity);
}

double
AreaModel::vcoreAreaUm2(unsigned num_slices, unsigned num_banks) const
{
    return num_slices * sliceAreaUm2() + num_banks * l2BankAreaUm2();
}

double
AreaModel::vcoreAreaMm2(unsigned num_slices, unsigned num_banks) const
{
    return vcoreAreaUm2(num_slices, num_banks) * 1e-6;
}

double
AreaModel::sharingOverheadFraction(bool include_l2_bank) const
{
    double overhead = 0.0;
    for (std::size_t i = 0; i < kNumComponents; ++i) {
        if (isSharingOverhead(static_cast<SliceComponent>(i)))
            overhead += areas_[i];
    }
    double total = sliceAreaUm2();
    if (include_l2_bank)
        total += l2BankAreaUm2();
    return overhead / total;
}

std::vector<AreaEntry>
AreaModel::breakdown(bool include_l2_bank) const
{
    std::vector<AreaEntry> rows;
    double total = sliceAreaUm2();
    if (include_l2_bank)
        total += l2BankAreaUm2();
    for (std::size_t i = 0; i < kNumComponents; ++i) {
        AreaEntry e;
        e.name = sliceComponentName(static_cast<SliceComponent>(i));
        e.areaUm2 = areas_[i];
        e.percent = 100.0 * areas_[i] / total;
        rows.push_back(std::move(e));
    }
    if (include_l2_bank) {
        AreaEntry e;
        e.name = "64 KB 4-way L2 Dcache";
        e.areaUm2 = l2BankAreaUm2();
        e.percent = 100.0 * e.areaUm2 / total;
        rows.push_back(std::move(e));
    }
    return rows;
}

} // namespace sharch
