/**
 * @file
 * The switched interconnects of the Sharing Architecture.
 *
 * Three dedicated networks connect Slices (section 5.1): the Scalar
 * Operand Network (operand request/reply), the load/store sorting
 * network, and the global-rename network.  A fourth, the memory
 * network, connects Slices to L2 Cache Banks.  All are 2-D switched
 * meshes with a 2-cycle nearest-neighbour latency plus 1 cycle per
 * additional hop (section 3.4, matching Tilera).
 *
 * The model is latency + injection-port contention: each Slice can
 * inject a bounded number of messages per cycle per network (the paper
 * found one operand network sufficient -- adding a second improved
 * performance by only ~1%, which bench_ablate_son reproduces).
 */

#ifndef SHARCH_NOC_NETWORK_HH
#define SHARCH_NOC_NETWORK_HH

#include <cstdint>
#include <vector>

#include "common/scheduling.hh"
#include "common/types.hh"
#include "config/sim_config.hh"
#include "noc/placement.hh"

namespace sharch {

/** Statistics for one network. */
struct NetworkStats
{
    Count messages = 0;
    Count totalHops = 0;
    Count injectionStalls = 0; //!< cycles lost to port back-pressure
};

/**
 * A latency/contention model of one switched mesh network.
 *
 * Time is supplied by the caller (the simulator's cycle counter); the
 * network tracks how many messages each source injected in the current
 * cycle and pushes extra messages to later cycles.
 */
class SwitchedNetwork
{
  public:
    /**
     * @param num_sources   number of injecting endpoints (Slices)
     * @param base_latency  nearest-neighbour message latency
     * @param per_hop       additional cycles per hop beyond the first
     * @param ports_per_cycle injections allowed per source per cycle
     *                        (operandNetworks * injectionsPerCycle)
     * @param name          label for obs trace spans (a string
     *                      literal; e.g. "operand", "sort")
     */
    SwitchedNetwork(unsigned num_sources, Cycles base_latency,
                    Cycles per_hop, unsigned ports_per_cycle,
                    const char *name = "net");

    /**
     * Send a message of @p hops hops at time @p now.
     *
     * @return the cycle at which the message arrives.  Messages between
     *         co-located endpoints (hops == 0) are free.
     */
    Cycles send(SliceId from, Cycles now, unsigned hops);

    /** Latency of a @p hops -hop message with no contention. */
    Cycles uncontendedLatency(unsigned hops) const;

    const NetworkStats &stats() const { return stats_; }

    /** Clear per-cycle port state and statistics. */
    void reset();

  private:
    Cycles base_;
    Cycles perHop_;
    const char *name_; //!< obs trace label (static storage)
    /** Per-source injection ports; slots claimable out of order. */
    std::vector<SlottedPort> ports_;
    NetworkStats stats_;
};

} // namespace sharch

#endif // SHARCH_NOC_NETWORK_HH
