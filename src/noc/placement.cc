#include "noc/placement.hh"

#include "common/logging.hh"

namespace sharch {

double
meanDistanceToBanks(const std::vector<Coord> &slices,
                    const std::vector<Coord> &banks)
{
    if (slices.empty() || banks.empty())
        return 0.0;
    double total = 0.0;
    for (const Coord &s : slices)
        for (const Coord &b : banks)
            total += manhattanDistance(s, b);
    return total / static_cast<double>(slices.size() * banks.size());
}

FabricPlacement::FabricPlacement(unsigned num_slices, unsigned num_banks,
                                 Coord origin)
{
    SHARCH_ASSERT(num_slices >= 1, "a VCore needs at least one Slice");
    slices_.reserve(num_slices);
    for (unsigned i = 0; i < num_slices; ++i)
        slices_.push_back(Coord{origin.x + static_cast<int>(i), origin.y});
    banks_.reserve(num_banks);
    for (unsigned b = 0; b < num_banks; ++b) {
        const int col = static_cast<int>(b) % kBanksPerRow;
        const int row = 1 + static_cast<int>(b) / kBanksPerRow;
        banks_.push_back(Coord{origin.x + col, origin.y + row});
    }
    // Precompute the hop tables the per-instruction paths index.
    sliceSliceHops_.resize(std::size_t{num_slices} * num_slices);
    for (unsigned a = 0; a < num_slices; ++a)
        for (unsigned b = 0; b < num_slices; ++b)
            sliceSliceHops_[a * num_slices + b] =
                manhattanDistance(slices_[a], slices_[b]);
    sliceBankHops_.resize(std::size_t{num_slices} * num_banks);
    for (unsigned s = 0; s < num_slices; ++s)
        for (unsigned b = 0; b < num_banks; ++b)
            sliceBankHops_[s * num_banks + b] =
                manhattanDistance(slices_[s], banks_[b]);
}

Coord
FabricPlacement::sliceCoord(SliceId s) const
{
    SHARCH_ASSERT(s < slices_.size(), "slice id out of range");
    return slices_[s];
}

Coord
FabricPlacement::bankCoord(BankId b) const
{
    SHARCH_ASSERT(b < banks_.size(), "bank id out of range");
    return banks_[b];
}

double
FabricPlacement::meanBankDistance() const
{
    return meanDistanceToBanks(slices_, banks_);
}

} // namespace sharch
