#include "noc/network.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sharch {

SwitchedNetwork::SwitchedNetwork(unsigned num_sources, Cycles base_latency,
                                 Cycles per_hop, unsigned ports_per_cycle)
    : base_(base_latency), perHop_(per_hop)
{
    SHARCH_ASSERT(num_sources > 0, "network needs at least one source");
    SHARCH_ASSERT(ports_per_cycle > 0, "need at least one port");
    ports_.reserve(num_sources);
    for (unsigned i = 0; i < num_sources; ++i)
        ports_.emplace_back(ports_per_cycle);
}

Cycles
SwitchedNetwork::uncontendedLatency(unsigned hops) const
{
    if (hops == 0)
        return 0;
    return base_ + perHop_ * (hops - 1);
}

Cycles
SwitchedNetwork::send(SliceId from, Cycles now, unsigned hops)
{
    // Hot loop: one send per remote operand / sorted memory op.
    SHARCH_DCHECK(from < ports_.size(), "bad network source");
    if (hops == 0)
        return now;

    const Cycles inject = ports_[from].schedule(now);
    if (inject > now)
        stats_.injectionStalls += inject - now;

    ++stats_.messages;
    stats_.totalHops += hops;
    return inject + uncontendedLatency(hops);
}

void
SwitchedNetwork::reset()
{
    for (auto &p : ports_)
        p.reset();
    stats_ = NetworkStats{};
}

} // namespace sharch
