#include "noc/network.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace sharch {

#if SHARCH_OBS
namespace {

/** Registered once per process; per-thread shards keep bumps cheap. */
struct NocMetrics
{
    obs::MetricId messages =
        obs::MetricsRegistry::instance().addCounter("noc.messages");
    obs::MetricId stallCycles =
        obs::MetricsRegistry::instance().addCounter(
            "noc.injection_stall_cycles");
    obs::HistogramHandle hops =
        obs::MetricsRegistry::instance().addHistogram("noc.hops", 0.0,
                                                      1.0, 16);
};

NocMetrics &
nocMetrics()
{
    static NocMetrics m;
    return m;
}

} // namespace
#endif

SwitchedNetwork::SwitchedNetwork(unsigned num_sources, Cycles base_latency,
                                 Cycles per_hop, unsigned ports_per_cycle,
                                 const char *name)
    : base_(base_latency), perHop_(per_hop), name_(name)
{
    SHARCH_ASSERT(num_sources > 0, "network needs at least one source");
    SHARCH_ASSERT(ports_per_cycle > 0, "need at least one port");
    ports_.reserve(num_sources);
    for (unsigned i = 0; i < num_sources; ++i)
        ports_.emplace_back(ports_per_cycle);
}

Cycles
SwitchedNetwork::uncontendedLatency(unsigned hops) const
{
    if (hops == 0)
        return 0;
    return base_ + perHop_ * (hops - 1);
}

Cycles
SwitchedNetwork::send(SliceId from, Cycles now, unsigned hops)
{
    // Hot loop: one send per remote operand / sorted memory op.
    SHARCH_DCHECK(from < ports_.size(), "bad network source");
    if (hops == 0)
        return now;

    const Cycles inject = ports_[from].schedule(now);
    if (inject > now)
        stats_.injectionStalls += inject - now;

    ++stats_.messages;
    stats_.totalHops += hops;
    const Cycles arrive = inject + uncontendedLatency(hops);
#if SHARCH_OBS
    if (obs::enabled()) {
        auto &reg = obs::MetricsRegistry::instance();
        const NocMetrics &m = nocMetrics();
        reg.add(m.messages);
        if (inject > now)
            reg.add(m.stallCycles, inject - now);
        reg.observe(m.hops, static_cast<double>(hops));
        obs::Tracer::instance().record(
            {name_, "noc", now, arrive, obs::kPidNoc, from, hops,
             "hops"});
    }
#endif
    return arrive;
}

void
SwitchedNetwork::reset()
{
    for (auto &p : ports_)
        p.reset();
    stats_ = NetworkStats{};
}

} // namespace sharch
