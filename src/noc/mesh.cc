#include "noc/mesh.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace sharch {

unsigned
manhattanDistance(Coord a, Coord b)
{
    return static_cast<unsigned>(std::abs(a.x - b.x) +
                                 std::abs(a.y - b.y));
}

std::vector<Coord>
xyRoute(Coord from, Coord to)
{
    std::vector<Coord> route;
    route.push_back(from);
    Coord cur = from;
    while (cur.x != to.x) {
        cur.x += (to.x > cur.x) ? 1 : -1;
        route.push_back(cur);
    }
    while (cur.y != to.y) {
        cur.y += (to.y > cur.y) ? 1 : -1;
        route.push_back(cur);
    }
    return route;
}

MeshGeometry::MeshGeometry(int width, int height)
    : width_(width), height_(height)
{
    SHARCH_ASSERT(width > 0 && height > 0,
                  "mesh dimensions must be positive");
}

Coord
MeshGeometry::coordOf(int index) const
{
    SHARCH_ASSERT(index >= 0 && index < numTiles(),
                  "tile index out of range");
    return Coord{index % width_, index / width_};
}

int
MeshGeometry::indexOf(Coord c) const
{
    SHARCH_ASSERT(contains(c), "coordinate off the mesh");
    return c.y * width_ + c.x;
}

bool
MeshGeometry::contains(Coord c) const
{
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
}

} // namespace sharch
