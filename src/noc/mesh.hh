/**
 * @file
 * 2-D mesh geometry: coordinates, Manhattan distance, and XY routes.
 *
 * The Sharing Architecture connects Slices and L2 Cache Banks with
 * multiple switched 2-D mesh networks (section 3).  This module holds
 * the purely geometric part: where tiles live and how many hops apart
 * they are under dimension-ordered (XY) routing.
 */

#ifndef SHARCH_NOC_MESH_HH
#define SHARCH_NOC_MESH_HH

#include <cstdint>
#include <vector>

namespace sharch {

/** A tile coordinate on the mesh. */
struct Coord
{
    int x = 0;
    int y = 0;

    bool operator==(const Coord &) const = default;
};

/** Manhattan distance in hops between two tiles. */
unsigned manhattanDistance(Coord a, Coord b);

/**
 * The sequence of tiles visited by XY (dimension-ordered) routing from
 * @p from to @p to, inclusive of both endpoints.
 */
std::vector<Coord> xyRoute(Coord from, Coord to);

/** A rectangular mesh with row-major tile indices. */
class MeshGeometry
{
  public:
    MeshGeometry(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    int numTiles() const { return width_ * height_; }

    /** Coordinate of row-major tile @p index. */
    Coord coordOf(int index) const;

    /** Row-major index of @p c. */
    int indexOf(Coord c) const;

    /** True when @p c is on the mesh. */
    bool contains(Coord c) const;

  private:
    int width_;
    int height_;
};

} // namespace sharch

#endif // SHARCH_NOC_MESH_HH
