/**
 * @file
 * Placement of a VCore's Slices and L2 Cache Banks on the fabric.
 *
 * Section 3 requires Slices of a VCore to be *contiguous* (to bound
 * operand latency) while Cache Banks may live anywhere.  We place the
 * s Slices of a VCore along one mesh row and fill banks into rows of
 * four above them.  Because one bank is 64 KB, a full row of four is
 * 256 KB, so average Slice-to-bank distance grows by about one hop per
 * extra 256 KB of cache.  With the Table 3 L2 latency of
 * distance*2 + 4 this reproduces the paper's "additional 2-cycles of
 * communication delay for each additional 256 KB" (section 5.4).
 */

#ifndef SHARCH_NOC_PLACEMENT_HH
#define SHARCH_NOC_PLACEMENT_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "noc/mesh.hh"

namespace sharch {

/**
 * Mean Manhattan distance over all (slice, bank) coordinate pairs --
 * the placement cost the hypervisor minimizes when it puts (or, after
 * a fault, re-places) a VCore's Slice run relative to its banks.
 * Zero when either set is empty.
 */
double meanDistanceToBanks(const std::vector<Coord> &slices,
                           const std::vector<Coord> &banks);

/** Coordinates for one VCore's resources and derived hop distances. */
class FabricPlacement
{
  public:
    /** Banks per mesh row in the bank block (4 banks == 256 KB). */
    static constexpr int kBanksPerRow = 4;

    /**
     * Place @p num_slices Slices contiguously and @p num_banks banks in
     * rows above them, offset by @p origin (so several VCores can
     * coexist on one chip without overlapping).
     */
    FabricPlacement(unsigned num_slices, unsigned num_banks,
                    Coord origin = {0, 0});

    unsigned numSlices() const
    { return static_cast<unsigned>(slices_.size()); }
    unsigned numBanks() const
    { return static_cast<unsigned>(banks_.size()); }

    Coord sliceCoord(SliceId s) const;
    Coord bankCoord(BankId b) const;

    /**
     * Hops between two Slices of this VCore.
     *
     * Placement is immutable after construction, so the pairwise
     * Manhattan distances are precomputed in the constructor; these
     * lookups sit on the per-instruction operand-network path.
     */
    unsigned
    sliceToSliceHops(SliceId a, SliceId b) const
    {
        SHARCH_DCHECK(a < slices_.size() && b < slices_.size(),
                      "slice id out of range");
        return sliceSliceHops_[a * slices_.size() + b];
    }

    /** Hops from a Slice to an L2 bank (precomputed, see above). */
    unsigned
    sliceToBankHops(SliceId s, BankId b) const
    {
        SHARCH_DCHECK(s < slices_.size() && b < banks_.size(),
                      "slice or bank id out of range");
        return sliceBankHops_[s * banks_.size() + b];
    }

    /** Mean Slice-to-bank distance over all (slice, bank) pairs. */
    double meanBankDistance() const;

  private:
    std::vector<Coord> slices_;
    std::vector<Coord> banks_;
    /** Row-major [numSlices x numSlices] hop table. */
    std::vector<unsigned> sliceSliceHops_;
    /** Row-major [numSlices x numBanks] hop table. */
    std::vector<unsigned> sliceBankHops_;
};

} // namespace sharch

#endif // SHARCH_NOC_PLACEMENT_HH
