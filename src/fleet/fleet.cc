#include "fleet/fleet.hh"

#include "common/logging.hh"

namespace sharch::fleet {

Fleet::Fleet(UtilityOptimizer &opt, const FleetConfig &cfg)
    : opt_(&opt),
      cfg_(cfg),
      chips_(cfg.chips),
      index_(static_cast<unsigned>(cfg.chipWidth))
{
    SHARCH_ASSERT(cfg.chips > 0, "a fleet needs at least one chip");
    SHARCH_ASSERT(cfg.chipWidth >= 1 && cfg.chipHeight >= 2,
                  "chip geometry must be at least 1x2");
    // One throwaway chip yields the per-chip capacity constants (and
    // the virgin index keys) without materializing anything.
    const FabricManager probe(cfg.chipWidth, cfg.chipHeight);
    perChipSlices_ = probe.totalSlices();
    perChipBanks_ = probe.totalBanks();
    // Every chip starts filed as virgin: full run, all banks free.
    // O(chips log chips) once, so the hot path never special-cases
    // virgin slots.
    for (ChipId id = 0; id < cfg.chips; ++id) {
        index_.insert(id, static_cast<unsigned>(cfg.chipWidth),
                      perChipBanks_);
    }
}

Chip &
Fleet::chip(ChipId id)
{
    SHARCH_ASSERT(id < chips_.size(), "chip id out of range");
    if (!chips_[id]) {
        chips_[id] = std::make_unique<Chip>(*opt_, cfg_.chipWidth,
                                            cfg_.chipHeight);
        materialized_++;
    }
    return *chips_[id];
}

std::optional<Placement>
Fleet::place(unsigned slices, unsigned banks)
{
    const std::optional<ChipId> where = index_.find(slices, banks);
    if (!where)
        return std::nullopt;
    Chip &c = chip(*where);
    const std::optional<AllocationId> local =
        c.fabric.allocate(slices, banks);
    // The index key is exact (largest free run, free banks), so a
    // chip the index offered must accept the shape.
    SHARCH_ASSERT(local.has_value(),
                  "placement index offered a chip that refused");
    refreshChip(*where);
    return Placement{*where, *local};
}

bool
Fleet::release(ChipId id, AllocationId local)
{
    if (!isMaterialized(id))
        return false;
    if (!chips_[id]->fabric.release(local))
        return false;
    refreshChip(id);
    return true;
}

std::vector<DegradeAction>
Fleet::markFaulty(ChipId id, fault::FaultKind kind, Coord tile)
{
    std::vector<DegradeAction> acts =
        chip(id).fabric.markFaulty(kind, tile);
    refreshChip(id);
    return acts;
}

bool
Fleet::heal(ChipId id, fault::FaultKind kind, Coord tile)
{
    if (!isMaterialized(id))
        return false; // virgin chips have no faults to heal
    if (!chips_[id]->fabric.heal(kind, tile))
        return false;
    refreshChip(id);
    return true;
}

bool
Fleet::isFaulty(ChipId id, fault::FaultKind kind, Coord tile) const
{
    const Chip *c = peek(id);
    return c && c->fabric.isFaulty(kind, tile);
}

void
Fleet::refreshChip(ChipId id)
{
    SHARCH_ASSERT(isMaterialized(id),
                  "cannot refresh a virgin chip");
    const FabricManager &fm = chips_[id]->fabric;
    index_.update(id, fm.largestFreeRun(), fm.freeBanks());
}

bool
Fleet::restoreChip(ChipId id, const FabricSnapshot &fab,
                   const SpotMarketSnapshot &mkt, std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    if (id >= cfg_.chips)
        return fail("chip id " + std::to_string(id) +
                    " exceeds the fleet size (" +
                    std::to_string(cfg_.chips) + " chips)");
    if (fab.width != cfg_.chipWidth || fab.height != cfg_.chipHeight)
        return fail("chip " + std::to_string(id) + " is " +
                    std::to_string(fab.width) + "x" +
                    std::to_string(fab.height) +
                    " but the fleet's chips are " +
                    std::to_string(cfg_.chipWidth) + "x" +
                    std::to_string(cfg_.chipHeight));
    Chip &c = chip(id);
    std::string ferr;
    if (!c.fabric.restore(fab, &ferr))
        return fail("chip " + std::to_string(id) + ": " + ferr);
    SpotMarketSnapshot copy = mkt;
    c.market.restore(copy);
    refreshChip(id);
    return true;
}

bool
Fleet::checkIndex(std::string *error) const
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };
    for (ChipId id = 0; id < cfg_.chips; ++id) {
        const auto keys = index_.keys(id);
        if (!keys)
            return fail("chip " + std::to_string(id) +
                        " is missing from the placement index");
        unsigned run = static_cast<unsigned>(cfg_.chipWidth);
        unsigned banks = perChipBanks_;
        if (const Chip *c = peek(id)) {
            run = c->fabric.largestFreeRun();
            banks = c->fabric.freeBanks();
        }
        if (keys->first != run || keys->second != banks) {
            return fail(
                "placement index files chip " + std::to_string(id) +
                " under (run " + std::to_string(keys->first) +
                ", banks " + std::to_string(keys->second) +
                ") but the chip offers (run " + std::to_string(run) +
                ", banks " + std::to_string(banks) + ")");
        }
    }
    return true;
}

} // namespace sharch::fleet
