/**
 * @file
 * A datacenter fleet of Sharing Architecture chips (ISSUE 10's
 * tentpole, scaling ROADMAP item 5's one-chip hypervisor out to
 * thousands).
 *
 * Each chip is one FabricManager + SpotMarket pair -- exactly the
 * state AllocationEngine manages for a single chip -- but chips are
 * *lazily materialized*: a virgin chip is a null slot plus a
 * placement-index entry (full run, all banks free), and the real
 * allocator/market objects are built on first touch.  A fleet of
 * 100k chips serving a few thousand tenants therefore costs memory
 * proportional to the chips actually used.
 *
 * Placement goes through the tiered PlacementIndex: admit, release,
 * fault, heal, and reshape all re-file only the touched chip, so
 * per-event work is O(chipArea + width * log chips) -- sublinear in
 * fleet size, which is what makes the 100k-event datacenter_churn
 * horizon tractable (EXPERIMENTS.md records the measurement).
 *
 * Fleet is pure mechanism: it does not know about events, leases, or
 * tenants.  FleetEngine (fleet_engine.hh) owns the policy and drives
 * everything through the engine's typed-event spine.
 */

#ifndef SHARCH_FLEET_FLEET_HH
#define SHARCH_FLEET_FLEET_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/placement_index.hh"
#include "hyper/fabric_manager.hh"
#include "hyper/spot_market.hh"

namespace sharch::fleet {

/** Fixed fleet geometry and per-chip auction policy. */
struct FleetConfig
{
    ChipId chips = 1024;       //!< chips in the fleet
    int chipWidth = 8;         //!< tiles per chip row
    int chipHeight = 8;        //!< rows per chip (>= 2)
    double tolerance = 0.10;   //!< per-chip auction clearing band
    unsigned maxRounds = 12;   //!< tatonnement bound per chip epoch
    double adjustRate = 0.25;  //!< price step per round
};

/** One materialized chip: allocator + its spot market. */
struct Chip
{
    Chip(UtilityOptimizer &opt, int width, int height)
        : fabric(width, height),
          market(opt, fabric.totalSlices(), fabric.totalBanks())
    {
    }

    FabricManager fabric;
    SpotMarket market;
};

/** Where one admission landed. */
struct Placement
{
    ChipId chip = 0;
    AllocationId local = 0; //!< the chip-level allocation id
};

class Fleet
{
  public:
    Fleet(UtilityOptimizer &opt, const FleetConfig &cfg);

    const FleetConfig &config() const { return cfg_; }
    ChipId chipCount() const { return cfg_.chips; }
    ChipId materializedChips() const { return materialized_; }
    unsigned perChipSlices() const { return perChipSlices_; }
    unsigned perChipBanks() const { return perChipBanks_; }

    bool isMaterialized(ChipId id) const
    {
        return id < chips_.size() && chips_[id] != nullptr;
    }

    /**
     * The chip object, materializing a virgin slot on first touch.
     * @pre id < chipCount()
     */
    Chip &chip(ChipId id);

    /** The chip object without materializing (nullptr: virgin). */
    const Chip *peek(ChipId id) const
    {
        return id < chips_.size() ? chips_[id].get() : nullptr;
    }

    /**
     * Best-fit admission through the index: nullopt when no chip in
     * the whole fleet can place (slices, banks).
     */
    std::optional<Placement> place(unsigned slices, unsigned banks);

    /** Release one allocation and re-file the chip. */
    bool release(ChipId id, AllocationId local);

    /** Route a fault to a chip (materializing it) and re-file. */
    std::vector<DegradeAction> markFaulty(ChipId id,
                                          fault::FaultKind kind,
                                          Coord tile);

    /** Return a chip tile to service and re-file. */
    bool heal(ChipId id, fault::FaultKind kind, Coord tile);

    bool isFaulty(ChipId id, fault::FaultKind kind, Coord tile) const;

    /**
     * Re-derive a chip's index keys after an out-of-band mutation
     * (reshape, defragment, checkpoint restore).
     */
    void refreshChip(ChipId id);

    /**
     * Adopt a restored chip state wholesale (checkpoint restore).
     * Geometry must match the fleet's; @return false with @p error
     * positioned otherwise.  The slot is materialized if virgin.
     */
    bool restoreChip(ChipId id, const FabricSnapshot &fab,
                     const SpotMarketSnapshot &mkt,
                     std::string *error);

    /**
     * Every index key matches the chip it summarizes (virgin slots
     * included).  @return false with @p error naming the first stale
     * entry.
     */
    bool checkIndex(std::string *error) const;

    PlacementIndex &index() { return index_; }
    const PlacementIndex &index() const { return index_; }

  private:
    UtilityOptimizer *opt_;
    FleetConfig cfg_;
    unsigned perChipSlices_ = 0;
    unsigned perChipBanks_ = 0;
    std::vector<std::unique_ptr<Chip>> chips_;
    ChipId materialized_ = 0;
    PlacementIndex index_;
};

} // namespace sharch::fleet

#endif // SHARCH_FLEET_FLEET_HH
