/**
 * @file
 * The fleet-scale allocation engine: thousands of chips of tenant
 * churn on the same deterministic event spine the single-chip engine
 * runs on (EngineBase).
 *
 * FleetEngine is the only writer to its Fleet.  Every mutation is a
 * typed Event:
 *
 *   FleetArrive   admit a tenant somewhere in the fleet (placement
 *                 via the tiered index); a nonzero lifetime posts the
 *                 matching FleetDepart at arrival+lifetime, and a
 *                 stream-driven arrival posts the *next* stream
 *                 arrival (exactly one pending at a time -- the
 *                 pending event is the workload cursor).
 *   FleetDepart   tenant leaves; its chip is re-filed in the index.
 *   EpochAuction  batch repricing: only chips whose customer book
 *                 changed since the last epoch ("dirty" chips) re-run
 *                 tatonnement, then a churn sample (live tenants,
 *                 occupancy, revenue, SLA rejections, fragmentation)
 *                 is appended to the report's time series.  In
 *                 stream mode the epoch re-posts itself while work
 *                 remains.
 *   FaultStrike / Heal with a chip id: per-chip graceful
 *                 degradation; a tenant evicted by a fault is
 *                 re-placed elsewhere in the fleet when any chip
 *                 fits it (the fleet-level second chance a one-chip
 *                 hypervisor cannot offer).
 *   Checkpoint    handled by EngineBase: captures saveState().
 *
 * Because the spine, journal (sharch-journal-v1), and serve protocol
 * are all EngineBase-generic, `sharch-serve --fleet N` and the chaos
 * kill/resume harness work against this engine unchanged; the state
 * document is sharch-state-v1 with "kind":"fleet" and one
 * fabric+market section per materialized chip.
 */

#ifndef SHARCH_FLEET_FLEET_ENGINE_HH
#define SHARCH_FLEET_FLEET_ENGINE_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "engine/engine_base.hh"
#include "fleet/fleet.hh"
#include "fleet/workload_stream.hh"

namespace sharch::fleet {

/** Fixed parameters of one fleet engine (not mutable state). */
struct FleetEngineConfig
{
    FleetConfig fleet;            //!< chips, geometry, auction policy
    Cycles epochPeriod = 50000;   //!< cycles between EpochAuctions
    bool replaceEvicted = true;   //!< fleet-level re-place on fault
    /** Pending-event bound: posts past it are refused (0: default). */
    std::size_t maxPending = engine::kDefaultMaxPending;
};

/** One admitted tenant: its chip, fabric claim, market identity. */
struct FleetLease
{
    std::uint64_t id = 0;     //!< fleet-global, never reused
    std::string tenant;
    ChipId chip = 0;
    AllocationId local = 0;   //!< the chip-level allocation id
    CustomerId customer = 0;
    bool hasCustomer = false; //!< false for budget-less tenants
    unsigned slices = 0;      //!< current shape (faults may shrink)
    unsigned banks = 0;
    Cycles arrivedAt = 0;
};

/** One EpochAuction's churn sample (the study's time series). */
struct ChurnSample
{
    Cycles at = 0;
    std::uint64_t live = 0;          //!< leases alive at the epoch
    std::uint64_t leasedSlices = 0;
    std::uint64_t leasedBanks = 0;
    double revenue = 0.0;            //!< sum of price * leased, all chips
    double fragmentation = 0.0;      //!< mean over materialized chips
    std::uint64_t rejected = 0;      //!< SLA violations so far
    std::uint64_t evictions = 0;     //!< fault evictions so far
    std::uint64_t materialized = 0;  //!< chips ever touched
};

class FleetEngine : public engine::EngineBase
{
  public:
    FleetEngine(UtilityOptimizer &opt, const FleetEngineConfig &cfg);

    /**
     * Drive @p count tenants from @p stream through the engine:
     * posts tenant 0 and the first EpochAuction, then each
     * dispatched stream arrival posts its successor.  run() then
     * plays the whole horizon.  Must be called at most once, on a
     * fresh engine.
     */
    void startStream(const WorkloadStream &stream,
                     std::uint64_t count);

    /**
     * Re-attach the workload generator after restoreState() of a
     * checkpoint cut mid-stream.  The cursor itself (last posted
     * index, horizon) lives in the state document; only the pure
     * generator -- which is config, not state -- needs re-providing.
     * @p stream must be configured identically to the original run
     * for the resumed trajectory to be byte-identical.
     */
    void resumeStream(const WorkloadStream &stream)
    {
        stream_ = &stream;
    }

    /** Expand a fault schedule into chip-targeted events. */
    void postFaultSchedule(
        ChipId chip, const std::vector<fault::FaultEvent> &fs);

    // --- Queries -------------------------------------------------

    const FleetEngineConfig &config() const { return cfg_; }
    const Fleet &fleet() const { return fleet_; }
    const std::map<std::uint64_t, FleetLease> &leases() const
    {
        return leases_;
    }
    const std::vector<ChurnSample> &samples() const
    {
        return samples_;
    }
    std::uint64_t replacedAcrossChips() const { return replaced_; }

    /** Fleet-wide leased tile totals (O(live leases)). */
    std::uint64_t leasedSlices() const;
    std::uint64_t leasedBanks() const;

    // --- EngineBase state contract -------------------------------

    std::string saveState() const override;
    bool restoreState(const std::string &text,
                      std::string *error) override;
    bool checkInvariants(std::string *error) const override;
    study::Report finalReport() const override;

    // --- Serve-protocol adaptation -------------------------------

    engine::Event arriveEvent(Cycles at, std::string tenant,
                              std::string benchmark,
                              UtilityKind utility, double budget,
                              unsigned slices, unsigned banks,
                              Cycles lifetime) const override;
    engine::Event departEvent(Cycles at,
                              std::string tenant) const override;
    engine::Event priceEvent(Cycles at) const override;
    bool hasLease(std::uint64_t id) const override
    {
        return leases_.count(id) != 0;
    }
    std::size_t leaseCount() const override { return leases_.size(); }
    void addPriceReply(json::Value *reply) const override;
    void addStatsReply(json::Value *reply) const override;

  protected:
    void dispatchEvent(const engine::Event &e) override;

  private:
    UtilityOptimizer *opt_;
    FleetEngineConfig cfg_;
    Fleet fleet_;
    std::map<std::uint64_t, FleetLease> leases_;
    std::map<std::string, std::uint64_t> byName_;
    std::map<std::pair<ChipId, AllocationId>, std::uint64_t>
        byLocal_;
    std::uint64_t nextLease_ = 1;
    std::uint64_t replaced_ = 0; //!< evictions saved by re-placement
    std::set<ChipId> dirty_;     //!< chips needing an auction pass
    std::vector<ChurnSample> samples_;

    // Stream mode (inactive when streamEnd_ == 0).
    const WorkloadStream *stream_ = nullptr;
    std::uint64_t streamPrev_ = 0; //!< index of last posted arrival
    std::uint64_t streamEnd_ = 0;  //!< one past the last index

    void handleFleetArrive(const engine::Event &e);
    void handleFleetDepart(const engine::Event &e);
    void handleEpochAuction();
    void handleFault(const engine::Event &e);
    void handleHeal(const engine::Event &e);
    void handleReshape(const engine::Event &e);

    void admitLease(const engine::Event &e, const Placement &where);
    void dropLease(std::map<std::uint64_t, FleetLease>::iterator it);
    void degradeBookkeeping(ChipId chip,
                            const std::vector<DegradeAction> &acts);
    double chipRevenue(const Chip &c) const;
    ChurnSample sampleNow() const;
};

} // namespace sharch::fleet

#endif // SHARCH_FLEET_FLEET_ENGINE_HH
