#include "fleet/workload_stream.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "exec/sweep.hh"
#include "trace/profile.hh"

namespace sharch::fleet {

WorkloadStream::WorkloadStream(const WorkloadConfig &cfg)
    : cfg_(cfg),
      benchmarks_(benchmarkNames())
{
    SHARCH_ASSERT(cfg.meanGap > 0.0 && cfg.meanLifetime > 0.0,
                  "workload means must be positive");
    SHARCH_ASSERT(cfg.diurnalAmplitude >= 0.0 &&
                      cfg.diurnalAmplitude < 1.0,
                  "diurnal amplitude must be in [0, 1)");
    SHARCH_ASSERT(cfg.maxSlices >= 1 && cfg.maxBanks >= 1,
                  "tenant shapes need at least one tile");
    SHARCH_ASSERT(cfg.maxBudget >= cfg.minBudget &&
                      cfg.minBudget >= 0.0,
                  "budget range is inverted");
    SHARCH_ASSERT(!benchmarks_.empty(),
                  "the profile table is empty");
}

std::string
WorkloadStream::tenantName(std::uint64_t index)
{
    return "t" + std::to_string(index);
}

FleetTenant
WorkloadStream::tenant(std::uint64_t index, Cycles prevArrival) const
{
    Rng rng(exec::deriveJobSeed(
        cfg_.seed, "fleet-tenant",
        static_cast<unsigned>(index >> 32),
        static_cast<unsigned>(index & 0xffffffffu)));

    FleetTenant t;
    t.index = index;
    t.name = tenantName(index);

    // Attributes first, gap last: the attribute stream stays aligned
    // however many thinning draws the gap needs.
    t.slices = static_cast<unsigned>(
                   rng.nextZipf(cfg_.maxSlices, cfg_.zipfAlpha)) +
               1;
    t.slices = std::min(t.slices, cfg_.maxSlices);
    t.banks =
        1 + static_cast<unsigned>(rng.nextBounded(cfg_.maxBanks));
    t.benchmark = benchmarks_[rng.nextBounded(benchmarks_.size())];
    t.utility = kAllUtilities[rng.nextBounded(3)];
    t.budget = cfg_.minBudget +
               rng.nextDouble() * (cfg_.maxBudget - cfg_.minBudget);
    t.lifetime = std::max<Cycles>(
        1, static_cast<Cycles>(
               rng.nextExponential(cfg_.meanLifetime)));

    // Diurnal Poisson gap by thinning against the peak rate.
    const double peak = 1.0 + cfg_.diurnalAmplitude;
    const double twoPi = 6.283185307179586;
    double gap = 0.0;
    for (int draws = 0; draws < 64; ++draws) {
        gap += rng.nextExponential(cfg_.meanGap / peak);
        const double phase =
            twoPi *
            (static_cast<double>(prevArrival) + gap) /
            static_cast<double>(cfg_.dayLength);
        const double rate =
            1.0 + cfg_.diurnalAmplitude * std::sin(phase);
        if (rng.nextBool(rate / peak))
            break;
        // After 64 rejections (vanishingly unlikely for A < 1) the
        // last candidate stands, bounding the loop.
    }
    t.at = prevArrival + std::max<Cycles>(1, static_cast<Cycles>(gap));
    return t;
}

} // namespace sharch::fleet
