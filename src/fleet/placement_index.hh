/**
 * @file
 * The fleet's sharded placement index: admit-time chip selection in
 * O(log chips) instead of a full-fleet scan.
 *
 * Every chip is summarized by two numbers -- its largest allocatable
 * contiguous Slice run L and its free-bank count B -- and filed into
 * the tier for L: one ordered set of (B, chip) pairs per possible run
 * length (0..maxRun, and maxRun is the chip *width*, a small
 * constant).  A request for (slices, banks) probes tiers L = slices
 * upward and takes the first tier holding a chip with B >= banks via
 * one lower_bound: best-fit on the run length first (minimize the
 * contiguity we break), then on banks, then lowest chip id.  Each
 * lookup therefore costs at most `width` ordered-set probes of
 * O(log chips) each -- per-event placement work that grows
 * logarithmically, not linearly, with fleet size (the datacenter_churn
 * study measures exactly this).
 *
 * The index is derived state: it is rebuilt from the chips on
 * restore, and FleetEngine::checkInvariants() re-derives every key
 * and compares.  Probe counters are part of the deterministic report
 * surface, so they serialize with the engine.
 */

#ifndef SHARCH_FLEET_PLACEMENT_INDEX_HH
#define SHARCH_FLEET_PLACEMENT_INDEX_HH

#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

namespace sharch::fleet {

/** Stable identifier of one chip in the fleet (dense, 0-based). */
using ChipId = std::uint32_t;

class PlacementIndex
{
  public:
    /** @param maxRun longest possible run (the chip width). */
    explicit PlacementIndex(unsigned maxRun)
        : tiers_(maxRun + 1)
    {
    }

    /** File @p chip under (run, banks); the chip must not be filed. */
    void insert(ChipId chip, unsigned run, unsigned banks);

    /** Re-file @p chip under new keys (after any chip mutation). */
    void update(ChipId chip, unsigned run, unsigned banks);

    /** The filed keys of @p chip (nullopt: not filed). */
    std::optional<std::pair<unsigned, unsigned>> keys(ChipId chip)
        const;

    /**
     * Best-fit lookup: the chip in the smallest adequate run tier
     * with the fewest free banks >= @p banks (lowest id breaking
     * ties), or nullopt when no chip fits.  Counts one lookup plus
     * one tier probe per ordered set examined.
     */
    std::optional<ChipId> find(unsigned slices, unsigned banks);

    std::size_t size() const { return filed_; }

    // --- Probe accounting (deterministic report surface) ---------

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t tierProbes() const { return tierProbes_; }
    void setProbeCounters(std::uint64_t lookups,
                          std::uint64_t tierProbes)
    {
        lookups_ = lookups;
        tierProbes_ = tierProbes;
    }

  private:
    /** tiers_[L]: chips whose largest free run is exactly L. */
    std::vector<std::set<std::pair<unsigned, ChipId>>> tiers_;
    /** keys_[chip]: (run, banks) as filed; run == kUnfiled if not. */
    std::vector<std::pair<unsigned, unsigned>> keys_;
    std::size_t filed_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t tierProbes_ = 0;

    static constexpr unsigned kUnfiled = ~0u;
};

} // namespace sharch::fleet

#endif // SHARCH_FLEET_PLACEMENT_INDEX_HH
