#include "fleet/fleet_engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "engine/state_json.hh"
#include "trace/profile.hh"

namespace sharch::fleet {

using engine::Event;
using engine::EventKind;

FleetEngine::FleetEngine(UtilityOptimizer &opt,
                         const FleetEngineConfig &cfg)
    : EngineBase(cfg.maxPending),
      opt_(&opt),
      cfg_(cfg),
      fleet_(opt, cfg.fleet)
{
    SHARCH_ASSERT(cfg.epochPeriod > 0,
                  "the epoch period must be positive");
}

void
FleetEngine::startStream(const WorkloadStream &stream,
                         std::uint64_t count)
{
    SHARCH_ASSERT(streamEnd_ == 0 && now() == 0,
                  "startStream needs a fresh engine");
    SHARCH_ASSERT(count > 0, "an empty stream drives nothing");
    stream_ = &stream;
    streamPrev_ = 0;
    streamEnd_ = count;
    const FleetTenant t0 = stream.tenant(0, 0);
    post(engine::fleetArrive(t0.at, t0.name, t0.benchmark, t0.utility,
                             t0.budget, t0.slices, t0.banks,
                             t0.lifetime));
    post(engine::epochAuction(cfg_.epochPeriod));
}

void
FleetEngine::postFaultSchedule(
    ChipId chip, const std::vector<fault::FaultEvent> &fs)
{
    for (const fault::FaultEvent &ev : fs) {
        Event e = ev.heal
                      ? engine::healFault(ev.at, ev.kind, ev.tile)
                      : engine::faultStrike(ev.at, ev.kind, ev.tile);
        e.chip = static_cast<int>(chip);
        post(e);
    }
}

std::uint64_t
FleetEngine::leasedSlices() const
{
    std::uint64_t total = 0;
    for (const auto &[id, lease] : leases_)
        total += lease.slices;
    return total;
}

std::uint64_t
FleetEngine::leasedBanks() const
{
    std::uint64_t total = 0;
    for (const auto &[id, lease] : leases_)
        total += lease.banks;
    return total;
}

void
FleetEngine::dispatchEvent(const Event &e)
{
    switch (e.kind) {
      case EventKind::FleetArrive: handleFleetArrive(e); break;
      case EventKind::FleetDepart: handleFleetDepart(e); break;
      case EventKind::EpochAuction: handleEpochAuction(); break;
      case EventKind::FaultStrike: handleFault(e); break;
      case EventKind::Heal: handleHeal(e); break;
      case EventKind::Reshape: handleReshape(e); break;
      case EventKind::Checkpoint:
        break; // EngineBase consumes Checkpoints before this point
      case EventKind::TenantArrive:
      case EventKind::TenantDepart:
      case EventKind::AuctionEpoch:
        lastOutcome_.detail =
            std::string(engine::eventKindName(e.kind)) +
            " is a single-chip event; this is a fleet engine";
        break;
    }
}

void
FleetEngine::handleFleetArrive(const Event &e)
{
    stats_.arrivals++;

    // Stream refill: dispatching arrival i posts arrival i+1, so
    // exactly one stream arrival is ever pending -- the queue entry
    // is the whole workload cursor a checkpoint needs.
    if (streamEnd_ != 0 && streamPrev_ + 1 < streamEnd_ &&
        e.tenant == WorkloadStream::tenantName(streamPrev_)) {
        SHARCH_ASSERT(stream_ != nullptr,
                      "stream checkpoint resumed without "
                      "resumeStream()");
        const FleetTenant t =
            stream_->tenant(streamPrev_ + 1, e.at);
        post(engine::fleetArrive(t.at, t.name, t.benchmark,
                                 t.utility, t.budget, t.slices,
                                 t.banks, t.lifetime));
        streamPrev_++;
    }

    if (e.slices == 0) {
        stats_.rejected++;
        lastOutcome_.detail = "a fleet tenant needs at least one "
                              "Slice";
        return;
    }
    if (byName_.count(e.tenant)) {
        stats_.rejected++;
        lastOutcome_.detail =
            "tenant '" + e.tenant + "' already holds a lease";
        return;
    }
    if (e.budget > 0.0 && !hasProfile(e.benchmark)) {
        stats_.rejected++;
        lastOutcome_.detail =
            "unknown benchmark '" + e.benchmark +
            "' (see ssim --list for valid profiles)";
        return;
    }

    const std::optional<Placement> where =
        fleet_.place(e.slices, e.banks);
    if (!where) {
        // An SLA violation: no chip in the fleet can host the shape.
        stats_.rejected++;
        lastOutcome_.detail =
            "no chip can place " + std::to_string(e.slices) +
            " Slices + " + std::to_string(e.banks) + " banks";
        return;
    }
    admitLease(e, *where);
}

void
FleetEngine::admitLease(const Event &e, const Placement &where)
{
    Chip &c = fleet_.chip(where.chip);
    FleetLease lease;
    lease.id = nextLease_++;
    lease.tenant = e.tenant;
    lease.chip = where.chip;
    lease.local = where.local;
    const FabricAllocation *fa = c.fabric.find(where.local);
    lease.slices = fa->slices.count;
    lease.banks = static_cast<unsigned>(fa->banks.size());
    lease.arrivedAt = now();
    if (e.budget > 0.0) {
        SpotCustomer cust;
        cust.name = e.tenant;
        cust.benchmark = e.benchmark;
        cust.utility = e.utility;
        cust.budget = e.budget;
        lease.customer = c.market.addCustomer(std::move(cust));
        lease.hasCustomer = true;
        dirty_.insert(where.chip);
    }
    byName_.emplace(lease.tenant, lease.id);
    byLocal_.emplace(std::make_pair(where.chip, where.local),
                     lease.id);
    const std::uint64_t id = lease.id;
    leases_.emplace(id, std::move(lease));
    stats_.admitted++;
    lastOutcome_.applied = true;
    lastOutcome_.lease = id;

    if (e.lifetime > 0 &&
        !post(engine::fleetDepart(e.at + e.lifetime, e.tenant))) {
        // Queue at its bound: the tenant is admitted but will not
        // auto-depart; the caller sees why in the outcome.
        lastOutcome_.detail =
            "admitted, but the departure could not be scheduled "
            "(pending queue is full)";
    }
}

void
FleetEngine::handleFleetDepart(const Event &e)
{
    auto name = byName_.find(e.tenant);
    if (name == byName_.end()) {
        stats_.unmatchedDeparts++;
        lastOutcome_.detail =
            "no live lease named '" + e.tenant + "'";
        return;
    }
    auto it = leases_.find(name->second);
    SHARCH_ASSERT(it != leases_.end(),
                  "byName_ points at a missing lease");
    lastOutcome_.applied = true;
    lastOutcome_.lease = it->first;
    fleet_.release(it->second.chip, it->second.local);
    dropLease(it);
    stats_.departures++;
}

void
FleetEngine::dropLease(
    std::map<std::uint64_t, FleetLease>::iterator it)
{
    const FleetLease &lease = it->second;
    if (lease.hasCustomer) {
        fleet_.chip(lease.chip).market.deactivateCustomer(
            lease.customer);
        dirty_.insert(lease.chip);
    }
    byName_.erase(lease.tenant);
    byLocal_.erase(std::make_pair(lease.chip, lease.local));
    leases_.erase(it);
}

double
FleetEngine::chipRevenue(const Chip &c) const
{
    const Market &m = c.market.prices();
    const FabricManager &fm = c.fabric;
    const double slices = static_cast<double>(
        fm.totalSlices() - fm.freeSlices() - fm.faultySlices());
    const double banks = static_cast<double>(
        fm.totalBanks() - fm.freeBanks() - fm.faultyBanks());
    return m.slicePrice * slices + m.bankPrice * banks;
}

ChurnSample
FleetEngine::sampleNow() const
{
    ChurnSample s;
    s.at = now();
    s.live = leases_.size();
    s.leasedSlices = leasedSlices();
    s.leasedBanks = leasedBanks();
    s.rejected = stats_.rejected;
    s.evictions = stats_.evictions;
    s.materialized = fleet_.materializedChips();
    std::uint64_t chips = 0;
    double frag = 0.0;
    for (ChipId id = 0; id < fleet_.chipCount(); ++id) {
        const Chip *c = fleet_.peek(id);
        if (!c)
            continue;
        s.revenue += chipRevenue(*c);
        frag += c->fabric.fragmentation();
        chips++;
    }
    if (chips > 0)
        s.fragmentation = frag / static_cast<double>(chips);
    return s;
}

void
FleetEngine::handleEpochAuction()
{
    // Only chips whose customer book changed re-run tatonnement;
    // everything else keeps its clearing prices.  Ascending chip id
    // keeps the pass deterministic.
    for (ChipId id : dirty_) {
        Chip &c = fleet_.chip(id);
        const std::vector<SpotRound> rounds = c.market.runToClearing(
            cfg_.fleet.tolerance, cfg_.fleet.maxRounds,
            cfg_.fleet.adjustRate);
        stats_.auctionRounds += rounds.size();
    }
    dirty_.clear();
    stats_.epochs++;
    samples_.push_back(sampleNow());
    lastOutcome_.applied = true;

    // In stream mode the epoch sustains itself while any work is
    // still queued; the chain (and so run()) halts once the horizon
    // has fully drained.
    if (streamEnd_ != 0 && pendingEvents() > 0)
        post(engine::epochAuction(now() + cfg_.epochPeriod));
}

void
FleetEngine::handleFault(const Event &e)
{
    if (e.chip < 0) {
        lastOutcome_.detail = "fault event without a chip target; "
                              "this is a fleet engine";
        return;
    }
    const ChipId chip = static_cast<ChipId>(e.chip);
    if (chip >= fleet_.chipCount()) {
        lastOutcome_.detail =
            "chip " + std::to_string(chip) +
            " exceeds the fleet size (" +
            std::to_string(fleet_.chipCount()) + " chips)";
        return;
    }
    if (fleet_.isFaulty(chip, e.fault, e.tile)) {
        lastOutcome_.detail = "tile already faulty";
        return;
    }
    const std::vector<DegradeAction> acts =
        fleet_.markFaulty(chip, e.fault, e.tile);
    stats_.faults++;
    lastOutcome_.applied = true;
    lastOutcome_.actions = acts;
    degradeBookkeeping(chip, acts);

    // Capacity leaves the chip's market (mirroring the single-chip
    // engine, minus its optional re-auction refinement).
    Chip &c = fleet_.chip(chip);
    const double slicesLost =
        e.fault == fault::FaultKind::Slice ? 1.0 : 0.0;
    const double banksLost =
        e.fault == fault::FaultKind::Bank ? 1.0 : 0.0;
    if (slicesLost == 0.0 && banksLost == 0.0)
        return; // link faults break contiguity, not capacity
    if (c.market.sliceCapacity() - slicesLost <= 0.0 ||
        c.market.bankCapacity() - banksLost <= 0.0) {
        return; // a market needs something to sell
    }
    c.market.reduceCapacity(slicesLost, banksLost);
    dirty_.insert(chip);
}

void
FleetEngine::degradeBookkeeping(
    ChipId chip, const std::vector<DegradeAction> &acts)
{
    for (const DegradeAction &act : acts) {
        stats_.reconfigCycles += act.cost;
        auto local = byLocal_.find(std::make_pair(chip, act.id));
        if (local == byLocal_.end())
            continue;
        auto it = leases_.find(local->second);
        SHARCH_ASSERT(it != leases_.end(),
                      "byLocal_ points at a missing lease");
        if (act.kind != DegradeKind::Evicted) {
            const FabricAllocation *fa =
                fleet_.chip(chip).fabric.find(act.id);
            if (fa) {
                it->second.slices = fa->slices.count;
                it->second.banks =
                    static_cast<unsigned>(fa->banks.size());
            }
            continue;
        }

        // Evicted from its chip.  The fleet-level second chance: try
        // the whole index for another home of the same shape before
        // giving the tenant up.
        FleetLease lease = it->second;
        dropLease(it);
        const std::optional<Placement> rehome =
            cfg_.replaceEvicted
                ? fleet_.place(lease.slices, lease.banks)
                : std::nullopt;
        if (!rehome) {
            stats_.evictions++;
            continue;
        }
        Chip &dest = fleet_.chip(rehome->chip);
        lease.chip = rehome->chip;
        lease.local = rehome->local;
        const FabricAllocation *fa =
            dest.fabric.find(rehome->local);
        lease.slices = fa->slices.count;
        lease.banks = static_cast<unsigned>(fa->banks.size());
        if (lease.hasCustomer) {
            // The customer book is per-chip: re-bid on the new one.
            const SpotCustomer cust = fleet_.chip(chip).market
                                          .customer(lease.customer);
            SpotCustomer moved;
            moved.name = cust.name;
            moved.benchmark = cust.benchmark;
            moved.utility = cust.utility;
            moved.budget = cust.budget;
            lease.customer = dest.market.addCustomer(
                std::move(moved));
            dirty_.insert(rehome->chip);
        }
        byName_.emplace(lease.tenant, lease.id);
        byLocal_.emplace(
            std::make_pair(lease.chip, lease.local), lease.id);
        const std::uint64_t id = lease.id;
        leases_.emplace(id, std::move(lease));
        replaced_++;
    }
}

void
FleetEngine::handleHeal(const Event &e)
{
    if (e.chip < 0) {
        lastOutcome_.detail = "heal event without a chip target; "
                              "this is a fleet engine";
        return;
    }
    const ChipId chip = static_cast<ChipId>(e.chip);
    if (chip >= fleet_.chipCount()) {
        lastOutcome_.detail =
            "chip " + std::to_string(chip) +
            " exceeds the fleet size (" +
            std::to_string(fleet_.chipCount()) + " chips)";
        return;
    }
    if (!fleet_.heal(chip, e.fault, e.tile)) {
        lastOutcome_.detail = "tile was not faulty";
        return;
    }
    stats_.heals++;
    lastOutcome_.applied = true;
    Chip &c = fleet_.chip(chip);
    if (e.fault == fault::FaultKind::Slice)
        c.market.restoreCapacity(1.0, 0.0);
    else if (e.fault == fault::FaultKind::Bank)
        c.market.restoreCapacity(0.0, 1.0);
}

void
FleetEngine::handleReshape(const Event &e)
{
    auto it = leases_.find(e.lease);
    if (it == leases_.end()) {
        lastOutcome_.detail =
            "no lease with id " + std::to_string(e.lease);
        return;
    }
    lastOutcome_.lease = e.lease;
    FleetLease &lease = it->second;
    Chip &c = fleet_.chip(lease.chip);
    const std::optional<Cycles> cost =
        c.fabric.reshape(lease.local, e.slices, e.banks);
    if (!cost) {
        lastOutcome_.detail = "fabric cannot satisfy the new shape";
        return;
    }
    fleet_.refreshChip(lease.chip);
    const FabricAllocation *fa = c.fabric.find(lease.local);
    lease.slices = fa->slices.count;
    lease.banks = static_cast<unsigned>(fa->banks.size());
    stats_.reconfigCycles += *cost;
    lastOutcome_.applied = true;
    lastOutcome_.cost = *cost;
}

// --- Serve-protocol adaptation -----------------------------------

engine::Event
FleetEngine::arriveEvent(Cycles at, std::string tenant,
                         std::string benchmark, UtilityKind utility,
                         double budget, unsigned slices,
                         unsigned banks, Cycles lifetime) const
{
    return engine::fleetArrive(at, std::move(tenant),
                               std::move(benchmark), utility, budget,
                               slices, banks, lifetime);
}

engine::Event
FleetEngine::departEvent(Cycles at, std::string tenant) const
{
    return engine::fleetDepart(at, std::move(tenant));
}

engine::Event
FleetEngine::priceEvent(Cycles at) const
{
    return engine::epochAuction(at);
}

void
FleetEngine::addPriceReply(json::Value *reply) const
{
    const ChurnSample s = sampleNow();
    reply->add("revenue", json::Value::number(s.revenue));
    reply->add("materialized",
               json::Value::number(std::uint64_t{s.materialized}));
    reply->add("dirty_chips",
               json::Value::number(
                   std::uint64_t{dirty_.size()}));
}

void
FleetEngine::addStatsReply(json::Value *reply) const
{
    const engine::EngineStats &s = stats();
    reply->add("leases",
               json::Value::number(std::uint64_t{leases_.size()}));
    reply->add("chips",
               json::Value::number(
                   std::uint64_t{fleet_.chipCount()}));
    reply->add("materialized",
               json::Value::number(
                   std::uint64_t{fleet_.materializedChips()}));
    reply->add("processed", json::Value::number(s.processed));
    reply->add("arrivals", json::Value::number(s.arrivals));
    reply->add("admitted", json::Value::number(s.admitted));
    reply->add("rejected", json::Value::number(s.rejected));
    reply->add("departures", json::Value::number(s.departures));
    reply->add("faults", json::Value::number(s.faults));
    reply->add("heals", json::Value::number(s.heals));
    reply->add("evictions", json::Value::number(s.evictions));
    reply->add("replaced", json::Value::number(replaced_));
    reply->add("epochs", json::Value::number(s.epochs));
    reply->add("checkpoints", json::Value::number(s.checkpoints));
    reply->add("leased_slices",
               json::Value::number(leasedSlices()));
    reply->add("leased_banks", json::Value::number(leasedBanks()));
}

} // namespace sharch::fleet
