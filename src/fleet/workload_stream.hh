/**
 * @file
 * The fleet's tenant-churn generator: a seeded, diurnal Poisson
 * stream of IaaS tenants.
 *
 * Determinism contract (DESIGN.md section 12): tenant i is a pure
 * function of (base seed, i, arrival time of tenant i-1).  Every
 * draw for tenant i comes from one Rng seeded via
 * exec::deriveJobSeed(seed, "fleet-tenant", hi32(i), lo32(i)) --
 * the same identity-derived scheme the sweep executor uses -- so the
 * stream is independent of thread count, platform, and how many
 * tenants were generated before a checkpoint cut.  FleetEngine keeps
 * exactly one pending FleetArrive in its queue (dispatching arrival
 * i posts arrival i+1), so a restored checkpoint resumes the stream
 * mid-flight without serializing any generator state: the pending
 * event *is* the cursor.
 *
 * Arrival gaps are exponential at a diurnally modulated rate,
 * lambda(t) = (1 + A * sin(2*pi*t / day)) / meanGap, sampled by
 * thinning against the peak rate: candidate gaps are drawn at the
 * peak rate and accepted with probability lambda(t)/lambdaPeak.  All
 * candidate draws come from tenant i's own Rng, so the thinning loop
 * is deterministic too.
 */

#ifndef SHARCH_FLEET_WORKLOAD_STREAM_HH
#define SHARCH_FLEET_WORKLOAD_STREAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "econ/utility.hh"

namespace sharch::fleet {

/** Shape of the tenant population (fixed per stream). */
struct WorkloadConfig
{
    std::uint64_t seed = 1;
    double meanGap = 400.0;        //!< mean inter-arrival at rate 1x
    double diurnalAmplitude = 0.6; //!< A in [0, 1): day/night swing
    Cycles dayLength = 1 << 20;    //!< cycles per diurnal period
    double meanLifetime = 60000.0; //!< mean tenant residency
    unsigned maxSlices = 6;        //!< VCore Slices drawn in [1, max]
    unsigned maxBanks = 8;         //!< L2 banks drawn in [1, max]
    double zipfAlpha = 1.1;        //!< small VCores dominate
    double minBudget = 4.0;        //!< spot budget, uniform in
    double maxBudget = 24.0;       //!< [min, max]
};

/** One generated tenant (FleetEngine turns this into FleetArrive). */
struct FleetTenant
{
    std::uint64_t index = 0;
    std::string name;          //!< "t<index>"
    Cycles at = 0;             //!< arrival cycle
    Cycles lifetime = 1;       //!< departs at `at + lifetime`
    unsigned slices = 1;
    unsigned banks = 1;
    std::string benchmark;
    UtilityKind utility = UtilityKind::Throughput;
    double budget = 0.0;
};

class WorkloadStream
{
  public:
    explicit WorkloadStream(const WorkloadConfig &cfg);

    const WorkloadConfig &config() const { return cfg_; }

    /** The stream name of tenant @p index ("t<index>"). */
    static std::string tenantName(std::uint64_t index);

    /**
     * Generate tenant @p index given the previous tenant's arrival
     * cycle (@p prevArrival; 0 for tenant 0).  Pure function.
     */
    FleetTenant tenant(std::uint64_t index, Cycles prevArrival) const;

  private:
    WorkloadConfig cfg_;
    std::vector<std::string> benchmarks_; //!< profile table order
};

} // namespace sharch::fleet

#endif // SHARCH_FLEET_WORKLOAD_STREAM_HH
