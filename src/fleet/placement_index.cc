#include "fleet/placement_index.hh"

#include "common/logging.hh"

namespace sharch::fleet {

void
PlacementIndex::insert(ChipId chip, unsigned run, unsigned banks)
{
    SHARCH_ASSERT(run < tiers_.size(),
                  "placement key exceeds the chip width");
    if (keys_.size() <= chip)
        keys_.resize(chip + 1, {kUnfiled, 0});
    SHARCH_ASSERT(keys_[chip].first == kUnfiled,
                  "chip is already filed");
    tiers_[run].emplace(banks, chip);
    keys_[chip] = {run, banks};
    filed_++;
}

void
PlacementIndex::update(ChipId chip, unsigned run, unsigned banks)
{
    SHARCH_ASSERT(chip < keys_.size() &&
                      keys_[chip].first != kUnfiled,
                  "cannot update an unfiled chip");
    const auto [oldRun, oldBanks] = keys_[chip];
    if (oldRun == run && oldBanks == banks)
        return;
    tiers_[oldRun].erase({oldBanks, chip});
    SHARCH_ASSERT(run < tiers_.size(),
                  "placement key exceeds the chip width");
    tiers_[run].emplace(banks, chip);
    keys_[chip] = {run, banks};
}

std::optional<std::pair<unsigned, unsigned>>
PlacementIndex::keys(ChipId chip) const
{
    if (chip >= keys_.size() || keys_[chip].first == kUnfiled)
        return std::nullopt;
    return keys_[chip];
}

std::optional<ChipId>
PlacementIndex::find(unsigned slices, unsigned banks)
{
    lookups_++;
    for (unsigned run = slices;
         run < static_cast<unsigned>(tiers_.size()); ++run) {
        tierProbes_++;
        const auto &tier = tiers_[run];
        auto it = tier.lower_bound({banks, 0});
        if (it != tier.end())
            return it->second;
    }
    return std::nullopt;
}

} // namespace sharch::fleet
