/**
 * @file
 * FleetEngine's sharch-state-v1 document, invariant audit, and final
 * report.
 *
 * The document shares the single-chip engine's schema tag, spine
 * sections (stats, queue -- serialized by EngineBase so the byte
 * formats stay in lockstep), and fabric/market encodings
 * (engine/state_json.hh), but carries "kind":"fleet" and one
 * fabric+market section per *materialized* chip; virgin chips are
 * pure configuration and serialize to nothing.  AllocationEngine
 * rejects fleet documents via the kind marker, and vice versa.
 */

#include <cmath>

#include "common/logging.hh"
#include "engine/state_json.hh"
#include "fleet/fleet_engine.hh"

namespace sharch::fleet {

namespace {

bool
fail(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

bool
stateU64(const json::Value &v, const char *key, std::uint64_t *out,
         std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->asU64(out))
        return fail(error, std::string(key) +
                               " missing or not an unsigned integer");
    return true;
}

bool
stateDouble(const json::Value &v, const char *key, double *out,
            std::string *error)
{
    const json::Value *f = v.get(key);
    if (!f || !f->isNumber())
        return fail(error,
                    std::string(key) + " missing or not a number");
    *out = f->asDouble();
    return true;
}

} // namespace

std::string
FleetEngine::saveState() const
{
    json::Value root = json::Value::object();
    root.add("schema", json::Value::string(engine::kStateSchema));
    root.add("kind", json::Value::string("fleet"));
    root.add("clock", json::Value::number(std::uint64_t{now()}));
    root.add("next_seq", json::Value::number(nextSeq()));
    root.add("stats", statsToJson());
    root.add("next_lease", json::Value::number(nextLease_));
    root.add("replaced", json::Value::number(replaced_));

    json::Value &stream = root.add("stream", json::Value::object());
    stream.add("prev", json::Value::number(streamPrev_));
    stream.add("end", json::Value::number(streamEnd_));

    json::Value &probe = root.add("probe", json::Value::object());
    probe.add("lookups",
              json::Value::number(fleet_.index().lookups()));
    probe.add("tiers",
              json::Value::number(fleet_.index().tierProbes()));

    json::Value &chips = root.add("chips", json::Value::array());
    for (ChipId id = 0; id < fleet_.chipCount(); ++id) {
        const Chip *c = fleet_.peek(id);
        if (!c)
            continue;
        json::Value &v = chips.push(json::Value::object());
        v.add("id", json::Value::number(std::uint64_t{id}));
        v.add("fabric",
              engine::fabricToJson(c->fabric.snapshot()));
        v.add("market",
              engine::marketStateToJson(c->market.snapshot()));
    }

    json::Value &leases = root.add("leases", json::Value::array());
    for (const auto &[id, lease] : leases_) {
        json::Value &v = leases.push(json::Value::object());
        v.add("id", json::Value::number(id));
        v.add("tenant", json::Value::string(lease.tenant));
        v.add("chip",
              json::Value::number(std::uint64_t{lease.chip}));
        v.add("local", json::Value::number(lease.local));
        v.add("customer",
              lease.hasCustomer
                  ? json::Value::number(
                        std::uint64_t{lease.customer})
                  : json::Value::null());
        v.add("slices", json::Value::number(lease.slices));
        v.add("banks", json::Value::number(lease.banks));
        v.add("arrived_at",
              json::Value::number(std::uint64_t{lease.arrivedAt}));
    }

    json::Value &dirty = root.add("dirty", json::Value::array());
    for (ChipId id : dirty_)
        dirty.push(json::Value::number(std::uint64_t{id}));

    json::Value &samples = root.add("samples", json::Value::array());
    for (const ChurnSample &s : samples_) {
        json::Value &v = samples.push(json::Value::object());
        v.add("at", json::Value::number(std::uint64_t{s.at}));
        v.add("live", json::Value::number(s.live));
        v.add("leased_slices",
              json::Value::number(s.leasedSlices));
        v.add("leased_banks", json::Value::number(s.leasedBanks));
        v.add("revenue", json::Value::number(s.revenue));
        v.add("fragmentation",
              json::Value::number(s.fragmentation));
        v.add("rejected", json::Value::number(s.rejected));
        v.add("evictions", json::Value::number(s.evictions));
        v.add("materialized", json::Value::number(s.materialized));
    }

    root.add("queue", queueToJson());
    return root.dump();
}

bool
FleetEngine::restoreState(const std::string &text,
                          std::string *error)
{
    json::Value root;
    std::string perr;
    if (!json::parse(text, &root, &perr))
        return fail(error, "state document is not valid JSON (" +
                               perr + ")");
    if (!root.isObject())
        return fail(error, "state document must be a JSON object");
    const json::Value *schema = root.get("schema");
    if (!schema || !schema->isString())
        return fail(error,
                    "schema tag missing: expected \"" +
                        std::string(engine::kStateSchema) + "\"");
    if (schema->text != engine::kStateSchema)
        return fail(error, "unsupported schema '" + schema->text +
                               "' (this build reads " +
                               std::string(engine::kStateSchema) +
                               ")");
    const json::Value *kind = root.get("kind");
    if (!kind || !kind->isString() || kind->text != "fleet")
        return fail(error, "state document is not a fleet engine "
                           "state (kind marker missing or not "
                           "\"fleet\")");

    std::uint64_t clock = 0, nextSeq = 0, nextLease = 0,
                  replaced = 0;
    if (!stateU64(root, "clock", &clock, error) ||
        !stateU64(root, "next_seq", &nextSeq, error) ||
        !stateU64(root, "next_lease", &nextLease, error) ||
        !stateU64(root, "replaced", &replaced, error)) {
        return false;
    }

    engine::EngineStats st;
    if (!statsFromJson(root, &st, error))
        return false;

    const json::Value *stream = root.get("stream");
    if (!stream || !stream->isObject())
        return fail(error, "stream missing or not an object");
    std::uint64_t streamPrev = 0, streamEnd = 0;
    std::string sub;
    if (!stateU64(*stream, "prev", &streamPrev, &sub) ||
        !stateU64(*stream, "end", &streamEnd, &sub)) {
        return fail(error, "stream." + sub);
    }

    const json::Value *probe = root.get("probe");
    if (!probe || !probe->isObject())
        return fail(error, "probe missing or not an object");
    std::uint64_t lookups = 0, tierProbes = 0;
    if (!stateU64(*probe, "lookups", &lookups, &sub) ||
        !stateU64(*probe, "tiers", &tierProbes, &sub)) {
        return fail(error, "probe." + sub);
    }

    // --- Chips (side-build: fleet_ untouched until commit) -------
    const json::Value *chips = root.get("chips");
    if (!chips || !chips->isArray())
        return fail(error, "chips missing or not an array");
    Fleet fleet(*opt_, cfg_.fleet);
    std::int64_t prevChip = -1;
    for (std::size_t i = 0; i < chips->items.size(); ++i) {
        const json::Value &cv = chips->items[i];
        const std::string where =
            "chips[" + std::to_string(i) + "]";
        if (!cv.isObject())
            return fail(error, where + ": not an object");
        std::uint64_t id = 0;
        if (!stateU64(cv, "id", &id, &sub))
            return fail(error, where + ": " + sub);
        if (static_cast<std::int64_t>(id) <= prevChip)
            return fail(error,
                        where + ": chip ids must be strictly "
                                "ascending");
        prevChip = static_cast<std::int64_t>(id);
        const json::Value *fab = cv.get("fabric");
        if (!fab || !fab->isObject())
            return fail(error,
                        where + ": fabric missing or not an object");
        FabricSnapshot fs;
        if (!engine::fabricFromJson(*fab, where + ".fabric", &fs,
                                    error)) {
            return false;
        }
        const json::Value *mkt = cv.get("market");
        if (!mkt || !mkt->isObject())
            return fail(error,
                        where + ": market missing or not an object");
        SpotMarketSnapshot ms;
        if (!engine::marketStateFromJson(*mkt, where + ".market",
                                         &ms, error)) {
            return false;
        }
        std::string cerr;
        if (!fleet.restoreChip(static_cast<ChipId>(id), fs, ms,
                               &cerr)) {
            return fail(error, where + ": " + cerr);
        }
    }
    fleet.index().setProbeCounters(lookups, tierProbes);

    // --- Leases --------------------------------------------------
    const json::Value *leases = root.get("leases");
    if (!leases || !leases->isArray())
        return fail(error, "leases missing or not an array");
    std::map<std::uint64_t, FleetLease> book;
    std::map<std::string, std::uint64_t> byName;
    std::map<std::pair<ChipId, AllocationId>, std::uint64_t> byLocal;
    for (std::size_t i = 0; i < leases->items.size(); ++i) {
        const json::Value &l = leases->items[i];
        const std::string where =
            "leases[" + std::to_string(i) + "]: ";
        if (!l.isObject())
            return fail(error, where + "not an object");
        FleetLease lease;
        std::uint64_t chip = 0, slices = 0, banks = 0;
        if (!stateU64(l, "id", &lease.id, &sub) ||
            !stateU64(l, "chip", &chip, &sub) ||
            !stateU64(l, "local", &lease.local, &sub) ||
            !stateU64(l, "slices", &slices, &sub) ||
            !stateU64(l, "banks", &banks, &sub) ||
            !stateU64(l, "arrived_at", &lease.arrivedAt, &sub)) {
            return fail(error, where + sub);
        }
        const json::Value *tenant = l.get("tenant");
        if (!tenant || !tenant->isString())
            return fail(error, where + "tenant missing");
        lease.tenant = tenant->text;
        lease.chip = static_cast<ChipId>(chip);
        lease.slices = static_cast<unsigned>(slices);
        lease.banks = static_cast<unsigned>(banks);
        if (lease.id == 0 || lease.id >= nextLease)
            return fail(error,
                        where + "lease id " +
                            std::to_string(lease.id) +
                            " outside [1, next_lease)");
        const Chip *c = fleet.peek(lease.chip);
        if (!c)
            return fail(error, where + "chip " +
                                   std::to_string(chip) +
                                   " is not materialized");
        const FabricAllocation *fa = c->fabric.find(lease.local);
        if (!fa)
            return fail(error,
                        where + "no allocation " +
                            std::to_string(lease.local) +
                            " on chip " + std::to_string(chip));
        if (lease.slices != fa->slices.count ||
            lease.banks !=
                static_cast<unsigned>(fa->banks.size())) {
            return fail(error,
                        where + "shape does not match the chip's "
                                "allocation");
        }
        const json::Value *customer = l.get("customer");
        if (!customer)
            return fail(error, where + "customer missing (use "
                                       "null for budget-less)");
        if (!customer->isNull()) {
            std::uint64_t cid = 0;
            if (!customer->asU64(&cid))
                return fail(error,
                            where + "customer is not an id");
            if (cid >= c->market.customers().size())
                return fail(
                    error,
                    where + "customer " + std::to_string(cid) +
                        " not in chip " + std::to_string(chip) +
                        "'s market book");
            lease.customer = static_cast<CustomerId>(cid);
            lease.hasCustomer = true;
        }
        if (book.count(lease.id))
            return fail(error, where + "duplicate lease id " +
                                   std::to_string(lease.id));
        if (byName.count(lease.tenant))
            return fail(error, where + "duplicate tenant '" +
                                   lease.tenant + "'");
        if (byLocal.count({lease.chip, lease.local}))
            return fail(error,
                        where + "duplicate chip allocation");
        byName.emplace(lease.tenant, lease.id);
        byLocal.emplace(
            std::make_pair(lease.chip, lease.local), lease.id);
        const std::uint64_t id = lease.id;
        book.emplace(id, std::move(lease));
    }

    // --- Dirty set -----------------------------------------------
    const json::Value *dirty = root.get("dirty");
    if (!dirty || !dirty->isArray())
        return fail(error, "dirty missing or not an array");
    std::set<ChipId> dirtySet;
    for (std::size_t i = 0; i < dirty->items.size(); ++i) {
        std::uint64_t id = 0;
        if (!dirty->items[i].asU64(&id) ||
            !fleet.isMaterialized(static_cast<ChipId>(id))) {
            return fail(error,
                        "dirty[" + std::to_string(i) +
                            "]: not a materialized chip id");
        }
        dirtySet.insert(static_cast<ChipId>(id));
    }

    // --- Samples -------------------------------------------------
    const json::Value *samples = root.get("samples");
    if (!samples || !samples->isArray())
        return fail(error, "samples missing or not an array");
    std::vector<ChurnSample> series;
    for (std::size_t i = 0; i < samples->items.size(); ++i) {
        const json::Value &sv = samples->items[i];
        const std::string where =
            "samples[" + std::to_string(i) + "]: ";
        if (!sv.isObject())
            return fail(error, where + "not an object");
        ChurnSample s;
        if (!stateU64(sv, "at", &s.at, &sub) ||
            !stateU64(sv, "live", &s.live, &sub) ||
            !stateU64(sv, "leased_slices", &s.leasedSlices,
                      &sub) ||
            !stateU64(sv, "leased_banks", &s.leasedBanks, &sub) ||
            !stateU64(sv, "rejected", &s.rejected, &sub) ||
            !stateU64(sv, "evictions", &s.evictions, &sub) ||
            !stateU64(sv, "materialized", &s.materialized, &sub) ||
            !stateDouble(sv, "revenue", &s.revenue, &sub) ||
            !stateDouble(sv, "fragmentation", &s.fragmentation,
                         &sub)) {
            return fail(error, where + sub);
        }
        series.push_back(s);
    }

    // --- Queue ---------------------------------------------------
    std::vector<Queued> pending;
    if (!queueFromJson(root.get("queue"), nextSeq, &pending, error))
        return false;

    // Everything validated: commit atomically.  A mid-stream
    // checkpoint keeps streaming only after resumeStream().
    fleet_ = std::move(fleet);
    leases_ = std::move(book);
    byName_ = std::move(byName);
    byLocal_ = std::move(byLocal);
    nextLease_ = nextLease;
    replaced_ = replaced;
    dirty_ = std::move(dirtySet);
    samples_ = std::move(series);
    streamPrev_ = streamPrev;
    streamEnd_ = streamEnd;
    adoptRestoredSpine(std::move(pending), clock, nextSeq, st);
    return true;
}

bool
FleetEngine::checkInvariants(std::string *error) const
{
    auto failWith = [&](const std::string &what) {
        if (error)
            *error = what;
        return false;
    };

    // Each materialized chip audits itself, then the fleet checks
    // the cross-chip glue: the placement index, the lease book, and
    // the occupancy arithmetic.
    std::uint64_t chipAllocations = 0;
    for (ChipId id = 0; id < fleet_.chipCount(); ++id) {
        const Chip *c = fleet_.peek(id);
        if (!c)
            continue;
        std::string cerr;
        if (!c->fabric.checkConsistency(&cerr))
            return failWith("chip " + std::to_string(id) + ": " +
                            cerr);
        if (!c->market.checkConsistency(&cerr))
            return failWith("chip " + std::to_string(id) + ": " +
                            cerr);
        const std::vector<FabricAllocation> allocs =
            c->fabric.allocations();
        chipAllocations += allocs.size();
        std::uint64_t leased = 0;
        for (const FabricAllocation &fa : allocs) {
            auto local = byLocal_.find(std::make_pair(id, fa.id));
            if (local == byLocal_.end())
                return failWith("chip " + std::to_string(id) +
                                " allocation " +
                                std::to_string(fa.id) +
                                " has no lease");
            leased += fa.slices.count;
        }
        if (leased + c->fabric.freeSlices() +
                c->fabric.faultySlices() !=
            c->fabric.totalSlices()) {
            return failWith("chip " + std::to_string(id) +
                            ": Slice occupancy does not close");
        }
    }
    if (!fleet_.checkIndex(error))
        return false;

    if (chipAllocations != leases_.size())
        return failWith(
            "lease book has " + std::to_string(leases_.size()) +
            " entries but the fleet holds " +
            std::to_string(chipAllocations) + " allocations");
    if (byName_.size() != leases_.size() ||
        byLocal_.size() != leases_.size()) {
        return failWith("lease lookup maps are out of step with "
                        "the book");
    }
    for (const auto &[id, lease] : leases_) {
        const Chip *c = fleet_.peek(lease.chip);
        if (!c)
            return failWith("lease " + std::to_string(id) +
                            " sits on virgin chip " +
                            std::to_string(lease.chip));
        const FabricAllocation *fa = c->fabric.find(lease.local);
        if (!fa)
            return failWith("lease " + std::to_string(id) +
                            " has no chip allocation");
        if (lease.slices != fa->slices.count ||
            lease.banks !=
                static_cast<unsigned>(fa->banks.size())) {
            return failWith("lease " + std::to_string(id) + " ('" +
                            lease.tenant +
                            "') disagrees with its chip "
                            "allocation's shape");
        }
        if (lease.hasCustomer) {
            if (lease.customer >= c->market.customers().size())
                return failWith("lease " + std::to_string(id) +
                                " points outside chip " +
                                std::to_string(lease.chip) +
                                "'s market book");
            if (!c->market.customer(lease.customer).active)
                return failWith("lease " + std::to_string(id) +
                                " references a departed customer");
        }
        if (lease.id >= nextLease_)
            return failWith("lease id " + std::to_string(id) +
                            " is not below the id counter");
        if (lease.arrivedAt > now())
            return failWith("lease " + std::to_string(id) +
                            " arrived after the clock");
    }
    for (ChipId id : dirty_) {
        if (!fleet_.isMaterialized(id))
            return failWith("dirty set names virgin chip " +
                            std::to_string(id));
    }
    if (leases_.size() > stats_.admitted)
        return failWith(std::to_string(leases_.size()) +
                        " live leases but only " +
                        std::to_string(stats_.admitted) +
                        " admissions recorded");
    return true;
}

study::Report
FleetEngine::finalReport() const
{
    study::Report r;
    r.id = "fleet";
    r.title = "Fleet engine final state";
    r.addMeta("schema", engine::kStateSchema);
    r.addMeta("chips", fleet_.chipCount());
    r.addMeta("chip", std::to_string(cfg_.fleet.chipWidth) + "x" +
                          std::to_string(cfg_.fleet.chipHeight));
    r.addMeta("clock",
              study::Value(static_cast<unsigned long long>(now())));

    study::Table &counters =
        r.addTable("fleet_counters", "Event counters");
    counters.col("counter", study::Value::Kind::Text)
        .col("value", study::Value::Kind::Integer);
    auto count = [&](const char *name, std::uint64_t v) {
        counters.addRow(
            {name, study::Value(static_cast<unsigned long long>(v))});
    };
    count("processed", stats_.processed);
    count("arrivals", stats_.arrivals);
    count("admitted", stats_.admitted);
    count("rejected", stats_.rejected);
    count("departures", stats_.departures);
    count("unmatched_departs", stats_.unmatchedDeparts);
    count("faults", stats_.faults);
    count("heals", stats_.heals);
    count("evictions", stats_.evictions);
    count("replaced_across_chips", replaced_);
    count("epochs", stats_.epochs);
    count("auction_rounds", stats_.auctionRounds);
    count("checkpoints", stats_.checkpoints);
    count("reconfig_cycles", stats_.reconfigCycles);

    const ChurnSample s = sampleNow();
    study::Table &occ =
        r.addTable("fleet_occupancy", "Fleet occupancy");
    occ.col("metric", study::Value::Kind::Text)
        .col("value", study::Value::Kind::Real, 4);
    occ.addRow({"materialized_chips",
                static_cast<double>(s.materialized)});
    occ.addRow({"live_leases", static_cast<double>(s.live)});
    occ.addRow({"leased_slices",
                static_cast<double>(s.leasedSlices)});
    occ.addRow({"leased_banks",
                static_cast<double>(s.leasedBanks)});
    const double totalSlices =
        static_cast<double>(fleet_.perChipSlices()) *
        static_cast<double>(fleet_.chipCount());
    occ.addRow({"slice_utilization",
                totalSlices > 0.0
                    ? static_cast<double>(s.leasedSlices) /
                          totalSlices
                    : 0.0});
    occ.addRow({"mean_fragmentation", s.fragmentation});
    occ.addRow({"revenue", s.revenue});

    study::Table &placement =
        r.addTable("fleet_placement", "Placement index work");
    placement.col("metric", study::Value::Kind::Text)
        .col("value", study::Value::Kind::Real, 4);
    const double lookups =
        static_cast<double>(fleet_.index().lookups());
    placement.addRow({"lookups", lookups});
    placement.addRow({"tier_probes",
                      static_cast<double>(
                          fleet_.index().tierProbes())});
    placement.addRow(
        {"probes_per_lookup",
         lookups > 0.0
             ? static_cast<double>(fleet_.index().tierProbes()) /
                   lookups
             : 0.0});

    study::Table &churn = r.addTable(
        "fleet_churn", "Per-epoch churn samples (time series)");
    churn.col("at", study::Value::Kind::Integer)
        .col("live", study::Value::Kind::Integer)
        .col("leased_slices", study::Value::Kind::Integer)
        .col("utilization", study::Value::Kind::Real, 4)
        .col("revenue", study::Value::Kind::Real, 4)
        .col("fragmentation", study::Value::Kind::Real, 4)
        .col("rejected", study::Value::Kind::Integer)
        .col("evictions", study::Value::Kind::Integer)
        .col("materialized", study::Value::Kind::Integer);
    for (const ChurnSample &cs : samples_) {
        churn.addRow(
            {study::Value(static_cast<unsigned long long>(cs.at)),
             study::Value(
                 static_cast<unsigned long long>(cs.live)),
             study::Value(static_cast<unsigned long long>(
                 cs.leasedSlices)),
             totalSlices > 0.0
                 ? static_cast<double>(cs.leasedSlices) /
                       totalSlices
                 : 0.0,
             cs.revenue, cs.fragmentation,
             study::Value(
                 static_cast<unsigned long long>(cs.rejected)),
             study::Value(
                 static_cast<unsigned long long>(cs.evictions)),
             study::Value(static_cast<unsigned long long>(
                 cs.materialized))});
    }
    return r;
}

} // namespace sharch::fleet
