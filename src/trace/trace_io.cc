#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

namespace sharch {

namespace {

constexpr char kMagic[4] = {'S', 'H', 'T', 'R'};

template <typename T>
void
put(std::ostream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
get(std::istream &in, T &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    return static_cast<bool>(in);
}

} // namespace

bool
writeTrace(const Trace &trace, std::ostream &out)
{
    out.write(kMagic, sizeof(kMagic));
    put<std::uint32_t>(out, kTraceFormatVersion);
    put<std::uint32_t>(out, trace.threadId);
    put<std::uint64_t>(out, trace.size());
    put<std::uint32_t>(out,
                       static_cast<std::uint32_t>(
                           trace.benchmark.size()));
    out.write(trace.benchmark.data(),
              static_cast<std::streamsize>(trace.benchmark.size()));
    for (const TraceInst &ti : trace.instructions) {
        put<std::uint64_t>(out, ti.pc);
        put<std::uint8_t>(out, static_cast<std::uint8_t>(ti.op));
        put<std::uint16_t>(out, ti.src1);
        put<std::uint16_t>(out, ti.src2);
        put<std::uint16_t>(out, ti.dst);
        put<std::uint64_t>(out, ti.effAddr);
        put<std::uint64_t>(out, ti.target);
        put<std::uint8_t>(out, ti.taken ? 1 : 0);
    }
    return static_cast<bool>(out);
}

bool
writeTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    return out && writeTrace(trace, out);
}

std::optional<Trace>
readTrace(std::istream &in)
{
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return std::nullopt;

    std::uint32_t version = 0, thread = 0, name_len = 0;
    std::uint64_t count = 0;
    if (!get(in, version) || version != kTraceFormatVersion)
        return std::nullopt;
    if (!get(in, thread) || !get(in, count) || !get(in, name_len))
        return std::nullopt;
    if (name_len > 4096)
        return std::nullopt; // implausible name: corrupt header

    Trace trace;
    trace.threadId = thread;
    trace.benchmark.resize(name_len);
    in.read(trace.benchmark.data(), name_len);
    if (!in)
        return std::nullopt;

    // Guard against absurd counts before reserving.
    constexpr std::uint64_t kMaxInstructions = 1ULL << 32;
    if (count > kMaxInstructions)
        return std::nullopt;
    trace.instructions.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceInst ti;
        std::uint8_t op = 0, taken = 0;
        if (!get(in, ti.pc) || !get(in, op) || !get(in, ti.src1) ||
            !get(in, ti.src2) || !get(in, ti.dst) ||
            !get(in, ti.effAddr) || !get(in, ti.target) ||
            !get(in, taken)) {
            return std::nullopt; // truncated record stream
        }
        if (op > static_cast<std::uint8_t>(OpClass::Branch))
            return std::nullopt;
        ti.op = static_cast<OpClass>(op);
        ti.taken = taken != 0;
        trace.instructions.push_back(ti);
    }
    return trace;
}

std::optional<Trace>
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    return readTrace(in);
}

} // namespace sharch
