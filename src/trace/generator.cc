#include "trace/generator.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.hh"
#include "trace/address_map.hh"

namespace sharch {

namespace {

using namespace addrmap;

// Architectural register map of the synthetic programs.  ILP is
// expressed structurally: up to kMaxChains independent dependency
// chains each own one register (r8..r19); loop induction / pointer
// base registers (r20..r23) update rarely so effective addresses do
// not chain on recent results; the rest are short-lived temporaries.
constexpr RegIndex kFirstChainReg = 8;
constexpr unsigned kMaxChains = 16;
constexpr RegIndex kFirstBaseReg = 24;
constexpr unsigned kNumBaseRegs = 2;
constexpr RegIndex kFirstTempReg = 26;
constexpr unsigned kNumTempRegs = 6;
constexpr unsigned kBaseRegUpdatePeriod = 48;

} // namespace

TraceGenerator::TraceGenerator(const BenchmarkProfile &profile,
                               std::uint64_t seed)
    : profile_(profile), seed_(seed)
{
    SHARCH_ASSERT(profile_.branchFrac > 0.0 && profile_.branchFrac < 0.5,
                  "branch fraction out of range");
    buildSkeleton();
}

void
TraceGenerator::buildSkeleton()
{
    Rng rng(seed_ ^ 0x5ce11e70ULL);
    const double mean_len = 1.0 / profile_.branchFrac;
    const auto num_blocks = std::max<std::size_t>(
        16, static_cast<std::size_t>(
                static_cast<double>(profile_.codeBytes) / 4.0 /
                mean_len));

    blocks_.resize(num_blocks);
    Addr pc = kCodeBase;
    for (auto &b : blocks_) {
        // Geometric length with the configured mean, at least 2 so a
        // block always has one body instruction before its terminator.
        b.len = 2 + static_cast<unsigned>(
                        rng.nextGeometric(1.0 / (mean_len - 1.0)));
        b.startPc = pc;
        pc += static_cast<Addr>(b.len) * 4;
    }
    for (std::size_t i = 0; i < num_blocks; ++i) {
        Block &b = blocks_[i];
        b.fallthrough = static_cast<unsigned>((i + 1) % num_blocks);
        const double kind = rng.nextDouble();
        const double eps = profile_.easyBranchBias;
        if (kind < 0.25) {
            // Loop back edge: short backward jump taken ~8x before the
            // exit falls through.  Loop density and bias are chosen so
            // the walk dwells locally but drifts forward on net --
            // denser or stickier loops would trap the walk in the
            // first blocks forever.
            const std::uint64_t back = 1 + rng.nextBounded(4);
            b.takenTarget = static_cast<unsigned>(
                (i + num_blocks - std::min<std::uint64_t>(back, i)) %
                num_blocks);
            b.takenBias = 0.88;
        } else if (kind < 0.97) {
            // Forward skip (if/else): rarely taken.
            const std::uint64_t fwd = 1 + rng.nextBounded(4);
            b.takenTarget =
                static_cast<unsigned>((i + 1 + fwd) % num_blocks);
            b.takenBias = eps;
        } else {
            // Far jump (call-like): lands on a zipf-hot entry point so
            // a subset of the static code dominates dynamically.
            b.takenTarget = static_cast<unsigned>(
                rng.nextZipf(num_blocks, 1.2));
            b.takenBias = 0.5;
        }
        // Data-dependent coins live on forward (if/else) sites; loop
        // trip counts stay predictable, as in real integer code.
        if (kind >= 0.25 && rng.nextBool(profile_.hardBranchFrac))
            b.takenBias = 0.5;
    }
}

Trace
TraceGenerator::generate(std::size_t num_instructions,
                         unsigned thread_id) const
{
    Rng rng(seed_ * 0x9e3779b9ULL + thread_id * 0x85ebca6bULL + 1);
    Trace trace;
    trace.benchmark = profile_.name;
    trace.threadId = thread_id;
    trace.instructions.reserve(num_instructions);

    const Addr hot_base = threadBase(kHotBase, thread_id);
    const Addr heap_base = threadBase(kHeapBase, thread_id);
    const Addr stream_base = threadBase(kStreamBase, thread_id);
    const std::uint64_t hot_lines =
        std::max<std::uint64_t>(1, profile_.hotBytes / kLine);
    const std::uint64_t ws_lines =
        std::max<std::uint64_t>(1, profile_.workingSetBytes / kLine);
    const std::uint64_t shared_lines =
        std::max<std::uint64_t>(1, profile_.sharedBytes / kLine);
    const std::uint64_t stream_lines = (32ULL << 20) / kLine;

    // Non-branch op mix, normalized to the non-branch fraction.
    const double non_branch = 1.0 - profile_.branchFrac;
    const double p_load = profile_.loadFrac / non_branch;
    const double p_store = profile_.storeFrac / non_branch;
    const double p_mul = profile_.mulFrac / non_branch;

    // meanDepDistance is the ILP knob: it sets how many independent
    // chains run concurrently.
    const unsigned num_chains = static_cast<unsigned>(std::clamp(
        profile_.meanDepDistance, 1.0,
        static_cast<double>(kMaxChains)));
    std::array<Addr, 16> recent_stores{};
    unsigned recent_store_count = 0;
    std::uint64_t stream_ptr = 0;
    unsigned temp_rr = 0;
    std::uint64_t since_base_update = 0;

    auto chain_reg = [&](unsigned c) -> RegIndex {
        return static_cast<RegIndex>(kFirstChainReg + c % num_chains);
    };
    auto pick_chain = [&]() -> RegIndex {
        return chain_reg(
            static_cast<unsigned>(rng.nextBounded(num_chains)));
    };
    // Effective addresses flow from long-lived base registers, not the
    // freshest results; otherwise every load chains on the previous
    // one and memory-level parallelism disappears.
    auto pick_addr_src = [&]() -> RegIndex {
        return static_cast<RegIndex>(
            kFirstBaseReg + rng.nextBounded(kNumBaseRegs));
    };
    auto pick_temp = [&]() -> RegIndex {
        return static_cast<RegIndex>(kFirstTempReg +
                                     (temp_rr++ % kNumTempRegs));
    };
    auto pick_temp_src = [&]() -> RegIndex {
        // A uniformly random temp was written ~kNumTempRegs/2 temp-ops
        // ago, so it is almost always ready: cheap scaffolding input.
        return static_cast<RegIndex>(
            kFirstTempReg + rng.nextBounded(kNumTempRegs));
    };
    auto pick_cheap_src = [&]() -> RegIndex {
        return rng.nextBool(0.5) ? pick_temp_src() : pick_addr_src();
    };

    auto gen_addr = [&](bool is_load) -> Addr {
        if (is_load && recent_store_count > 0 &&
            rng.nextBool(profile_.storeLoadConflictFrac)) {
            const auto n =
                std::min<std::uint64_t>(recent_store_count, 16);
            return recent_stores[rng.nextBounded(n)];
        }
        if (rng.nextBool(profile_.hotFrac)) {
            return hot_base + rng.nextBounded(hot_lines) * kLine +
                   rng.nextBounded(kLine / 8) * 8;
        }
        if (rng.nextBool(profile_.streamFrac)) {
            // Unit-stride sweep: 8-byte elements, no temporal reuse.
            const Addr a = stream_base +
                           (stream_ptr * 8) % (stream_lines * kLine);
            ++stream_ptr;
            return a;
        }
        if (profile_.multithreaded &&
            rng.nextBool(profile_.sharedFrac)) {
            return kSharedBase +
                   rng.nextZipf(shared_lines, profile_.zipfAlpha) *
                       kLine;
        }
        return heap_base +
               rng.nextZipf(ws_lines, profile_.zipfAlpha) * kLine +
               rng.nextBounded(kLine / 8) * 8;
    };

    std::size_t block_idx = 0;
    while (trace.size() < num_instructions) {
        const Block &b = blocks_[block_idx];
        // Body instructions.
        for (unsigned k = 0; k + 1 < b.len &&
                             trace.size() < num_instructions; ++k) {
            TraceInst ti;
            ti.pc = b.startPc + static_cast<Addr>(k) * 4;
            // Loop induction: base registers advance periodically via
            // a dependency-free update, like `add rB, rB, #stride`.
            if (++since_base_update >= kBaseRegUpdatePeriod) {
                since_base_update = 0;
                ti.op = OpClass::IntAlu;
                ti.src1 = pick_addr_src();
                ti.dst = ti.src1;
                trace.instructions.push_back(ti);
                continue;
            }
            const double u = rng.nextDouble();
            if (u < p_load) {
                ti.op = OpClass::Load;
                if (rng.nextBool(profile_.pointerChaseFrac)) {
                    // Pointer chase: ptr = *ptr.  Address and result
                    // share one chain register, so consecutive misses
                    // of the chain fully serialize.
                    const RegIndex c = pick_chain();
                    ti.src1 = c;
                    ti.dst = c;
                } else {
                    ti.src1 = pick_addr_src();
                    // Half the independent loads feed a chain (their
                    // latency lands on the critical path); the rest
                    // fill temporaries.
                    ti.dst = rng.nextBool(0.5) ? pick_chain()
                                               : pick_temp();
                }
                ti.effAddr = gen_addr(true);
            } else if (u < p_load + p_store) {
                ti.op = OpClass::Store;
                ti.src1 = pick_addr_src();
                ti.src2 = rng.nextBool(0.5) ? pick_chain()
                                            : pick_temp_src();
                ti.effAddr = gen_addr(false);
                recent_stores[recent_store_count % 16] = ti.effAddr;
                ++recent_store_count;
            } else if (u < p_load + p_store + p_mul) {
                ti.op = OpClass::IntMul;
                const RegIndex c = pick_chain();
                ti.src1 = c;
                ti.src2 = rng.nextBool(0.3) ? pick_cheap_src() : kNoReg;
                ti.dst = c;
            } else if (rng.nextBool(0.85)) {
                // Chain step: rC = rC op cheap.  Chains never read
                // each other directly -- cross-chain coupling would
                // lock every chain to the slowest frontier and erase
                // the ILP the chain count is supposed to express.
                ti.op = OpClass::IntAlu;
                const RegIndex c = pick_chain();
                ti.src1 = c;
                if (rng.nextBool(0.4))
                    ti.src2 = pick_cheap_src();
                ti.dst = c;
            } else {
                // Scaffolding: temporaries computed from bases/temps.
                ti.op = OpClass::IntAlu;
                ti.src1 = pick_cheap_src();
                if (rng.nextBool(0.4))
                    ti.src2 = pick_temp_src();
                ti.dst = pick_temp();
            }
            trace.instructions.push_back(ti);
        }
        if (trace.size() >= num_instructions)
            break;
        // Terminating branch.
        TraceInst br;
        br.pc = b.startPc + static_cast<Addr>(b.len - 1) * 4;
        br.op = OpClass::Branch;
        // Loop exits and most ifs test induction variables or freshly
        // computed temporaries, which resolve early; only a minority
        // hang off a long dependence chain.
        br.src1 = rng.nextBool(0.75) ? pick_addr_src() : pick_temp();
        if (rng.nextBool(0.2))
            br.src2 = pick_chain();
        br.taken = rng.nextBool(b.takenBias);
        const std::size_t next =
            br.taken ? b.takenTarget : b.fallthrough;
        br.target = blocks_[next].startPc;
        trace.instructions.push_back(br);
        block_idx = next;
    }
    return trace;
}

std::vector<Trace>
TraceGenerator::generateThreads(std::size_t instructions_per_thread) const
{
    const unsigned threads =
        profile_.multithreaded ? profile_.numThreads : 1;
    std::vector<Trace> traces;
    traces.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        traces.push_back(generate(instructions_per_thread, t));
    return traces;
}

} // namespace sharch
