#include "trace/generator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "trace/address_map.hh"

namespace sharch {

namespace {

using namespace addrmap;

// Architectural register map of the synthetic programs.  ILP is
// expressed structurally: up to kMaxChains independent dependency
// chains each own one register (r8..r19); loop induction / pointer
// base registers (r20..r23) update rarely so effective addresses do
// not chain on recent results; the rest are short-lived temporaries.
constexpr RegIndex kFirstChainReg = 8;
constexpr unsigned kMaxChains = 16;
constexpr RegIndex kFirstBaseReg = 24;
constexpr unsigned kNumBaseRegs = 2;
constexpr RegIndex kFirstTempReg = 26;
constexpr unsigned kNumTempRegs = 6;
constexpr unsigned kBaseRegUpdatePeriod = 48;

} // namespace

TraceGenerator::TraceGenerator(const BenchmarkProfile &profile,
                               std::uint64_t seed)
    : profile_(profile), seed_(seed)
{
    SHARCH_ASSERT(profile_.branchFrac > 0.0 && profile_.branchFrac < 0.5,
                  "branch fraction out of range");
    buildSkeleton();
}

void
TraceGenerator::buildSkeleton()
{
    Rng rng(seed_ ^ 0x5ce11e70ULL);
    const double mean_len = 1.0 / profile_.branchFrac;
    const auto num_blocks = std::max<std::size_t>(
        16, static_cast<std::size_t>(
                static_cast<double>(profile_.codeBytes) / 4.0 /
                mean_len));

    blocks_.resize(num_blocks);
    Addr pc = kCodeBase;
    for (auto &b : blocks_) {
        // Geometric length with the configured mean, at least 2 so a
        // block always has one body instruction before its terminator.
        b.len = 2 + static_cast<unsigned>(
                        rng.nextGeometric(1.0 / (mean_len - 1.0)));
        b.startPc = pc;
        pc += static_cast<Addr>(b.len) * 4;
    }
    for (std::size_t i = 0; i < num_blocks; ++i) {
        Block &b = blocks_[i];
        b.fallthrough = static_cast<unsigned>((i + 1) % num_blocks);
        const double kind = rng.nextDouble();
        const double eps = profile_.easyBranchBias;
        if (kind < 0.25) {
            // Loop back edge: short backward jump taken ~8x before the
            // exit falls through.  Loop density and bias are chosen so
            // the walk dwells locally but drifts forward on net --
            // denser or stickier loops would trap the walk in the
            // first blocks forever.
            const std::uint64_t back = 1 + rng.nextBounded(4);
            b.takenTarget = static_cast<unsigned>(
                (i + num_blocks - std::min<std::uint64_t>(back, i)) %
                num_blocks);
            b.takenBias = 0.88;
        } else if (kind < 0.97) {
            // Forward skip (if/else): rarely taken.
            const std::uint64_t fwd = 1 + rng.nextBounded(4);
            b.takenTarget =
                static_cast<unsigned>((i + 1 + fwd) % num_blocks);
            b.takenBias = eps;
        } else {
            // Far jump (call-like): lands on a zipf-hot entry point so
            // a subset of the static code dominates dynamically.
            b.takenTarget = static_cast<unsigned>(
                rng.nextZipf(num_blocks, 1.2));
            b.takenBias = 0.5;
        }
        // Data-dependent coins live on forward (if/else) sites; loop
        // trip counts stay predictable, as in real integer code.
        if (kind >= 0.25 && rng.nextBool(profile_.hardBranchFrac))
            b.takenBias = 0.5;
    }
}

TraceGenerator::Cursor::Cursor(const TraceGenerator &gen,
                               unsigned thread_id)
    : gen_(&gen),
      rng_(gen.seed_ * 0x9e3779b9ULL + thread_id * 0x85ebca6bULL + 1),
      hotBase_(threadBase(kHotBase, thread_id)),
      heapBase_(threadBase(kHeapBase, thread_id)),
      streamBase_(threadBase(kStreamBase, thread_id)),
      hotLines_(std::max<std::uint64_t>(1, gen.profile_.hotBytes / kLine)),
      streamLines_((32ULL << 20) / kLine),
      wsZipf_(std::max<std::uint64_t>(
                  1, gen.profile_.workingSetBytes / kLine),
              gen.profile_.zipfAlpha),
      sharedZipf_(std::max<std::uint64_t>(
                      1, gen.profile_.sharedBytes / kLine),
                  gen.profile_.zipfAlpha)
{
    // Non-branch op mix, normalized to the non-branch fraction.
    const double non_branch = 1.0 - gen.profile_.branchFrac;
    pLoad_ = gen.profile_.loadFrac / non_branch;
    pStore_ = gen.profile_.storeFrac / non_branch;
    pMul_ = gen.profile_.mulFrac / non_branch;
    // meanDepDistance is the ILP knob: it sets how many independent
    // chains run concurrently.
    numChains_ = static_cast<unsigned>(std::clamp(
        gen.profile_.meanDepDistance, 1.0,
        static_cast<double>(kMaxChains)));
}

RegIndex
TraceGenerator::Cursor::pickChain()
{
    const auto c =
        static_cast<unsigned>(rng_.nextBounded(numChains_));
    return static_cast<RegIndex>(kFirstChainReg + c % numChains_);
}

// Effective addresses flow from long-lived base registers, not the
// freshest results; otherwise every load chains on the previous one
// and memory-level parallelism disappears.
RegIndex
TraceGenerator::Cursor::pickAddrSrc()
{
    return static_cast<RegIndex>(kFirstBaseReg +
                                 rng_.nextBounded(kNumBaseRegs));
}

RegIndex
TraceGenerator::Cursor::pickTemp()
{
    return static_cast<RegIndex>(kFirstTempReg +
                                 (tempRr_++ % kNumTempRegs));
}

RegIndex
TraceGenerator::Cursor::pickTempSrc()
{
    // A uniformly random temp was written ~kNumTempRegs/2 temp-ops
    // ago, so it is almost always ready: cheap scaffolding input.
    return static_cast<RegIndex>(kFirstTempReg +
                                 rng_.nextBounded(kNumTempRegs));
}

RegIndex
TraceGenerator::Cursor::pickCheapSrc()
{
    return rng_.nextBool(0.5) ? pickTempSrc() : pickAddrSrc();
}

Addr
TraceGenerator::Cursor::genAddr(bool is_load)
{
    const BenchmarkProfile &prof = gen_->profile_;
    if (is_load && recentStoreCount_ > 0 &&
        rng_.nextBool(prof.storeLoadConflictFrac)) {
        const auto n = std::min<std::uint64_t>(recentStoreCount_, 16);
        return recentStores_[rng_.nextBounded(n)];
    }
    if (rng_.nextBool(prof.hotFrac)) {
        return hotBase_ + rng_.nextBounded(hotLines_) * kLine +
               rng_.nextBounded(kLine / 8) * 8;
    }
    if (rng_.nextBool(prof.streamFrac)) {
        // Unit-stride sweep: 8-byte elements, no temporal reuse.
        const Addr a = streamBase_ +
                       (streamPtr_ * 8) % (streamLines_ * kLine);
        ++streamPtr_;
        return a;
    }
    if (prof.multithreaded && rng_.nextBool(prof.sharedFrac)) {
        return kSharedBase + sharedZipf_.draw(rng_) * kLine;
    }
    return heapBase_ + wsZipf_.draw(rng_) * kLine +
           rng_.nextBounded(kLine / 8) * 8;
}

void
TraceGenerator::Cursor::emit(TraceInst *out, std::size_t n)
{
    const std::vector<Block> &blocks = gen_->blocks_;
    const BenchmarkProfile &prof = gen_->profile_;
    for (std::size_t i = 0; i < n; ++i) {
        const Block &b = blocks[blockIdx_];
        TraceInst ti;
        if (posInBlock_ + 1 < b.len) {
            // Body instruction.
            ti.pc = b.startPc + static_cast<Addr>(posInBlock_) * 4;
            ++posInBlock_;
            // Loop induction: base registers advance periodically via
            // a dependency-free update, like `add rB, rB, #stride`.
            if (++sinceBaseUpdate_ >= kBaseRegUpdatePeriod) {
                sinceBaseUpdate_ = 0;
                ti.op = OpClass::IntAlu;
                ti.src1 = pickAddrSrc();
                ti.dst = ti.src1;
                out[i] = ti;
                ++emitted_;
                continue;
            }
            const double u = rng_.nextDouble();
            if (u < pLoad_) {
                ti.op = OpClass::Load;
                if (rng_.nextBool(prof.pointerChaseFrac)) {
                    // Pointer chase: ptr = *ptr.  Address and result
                    // share one chain register, so consecutive misses
                    // of the chain fully serialize.
                    const RegIndex c = pickChain();
                    ti.src1 = c;
                    ti.dst = c;
                } else {
                    ti.src1 = pickAddrSrc();
                    // Half the independent loads feed a chain (their
                    // latency lands on the critical path); the rest
                    // fill temporaries.
                    ti.dst = rng_.nextBool(0.5) ? pickChain()
                                                : pickTemp();
                }
                ti.effAddr = genAddr(true);
            } else if (u < pLoad_ + pStore_) {
                ti.op = OpClass::Store;
                ti.src1 = pickAddrSrc();
                ti.src2 = rng_.nextBool(0.5) ? pickChain()
                                             : pickTempSrc();
                ti.effAddr = genAddr(false);
                recentStores_[recentStoreCount_ % 16] = ti.effAddr;
                ++recentStoreCount_;
            } else if (u < pLoad_ + pStore_ + pMul_) {
                ti.op = OpClass::IntMul;
                const RegIndex c = pickChain();
                ti.src1 = c;
                ti.src2 = rng_.nextBool(0.3) ? pickCheapSrc() : kNoReg;
                ti.dst = c;
            } else if (rng_.nextBool(0.85)) {
                // Chain step: rC = rC op cheap.  Chains never read
                // each other directly -- cross-chain coupling would
                // lock every chain to the slowest frontier and erase
                // the ILP the chain count is supposed to express.
                ti.op = OpClass::IntAlu;
                const RegIndex c = pickChain();
                ti.src1 = c;
                if (rng_.nextBool(0.4))
                    ti.src2 = pickCheapSrc();
                ti.dst = c;
            } else {
                // Scaffolding: temporaries computed from bases/temps.
                ti.op = OpClass::IntAlu;
                ti.src1 = pickCheapSrc();
                if (rng_.nextBool(0.4))
                    ti.src2 = pickTempSrc();
                ti.dst = pickTemp();
            }
        } else {
            // Terminating branch.
            ti.pc = b.startPc + static_cast<Addr>(b.len - 1) * 4;
            ti.op = OpClass::Branch;
            // Loop exits and most ifs test induction variables or
            // freshly computed temporaries, which resolve early; only
            // a minority hang off a long dependence chain.
            ti.src1 = rng_.nextBool(0.75) ? pickAddrSrc() : pickTemp();
            if (rng_.nextBool(0.2))
                ti.src2 = pickChain();
            ti.taken = rng_.nextBool(b.takenBias);
            const std::size_t next =
                ti.taken ? b.takenTarget : b.fallthrough;
            ti.target = blocks[next].startPc;
            blockIdx_ = next;
            posInBlock_ = 0;
        }
        out[i] = ti;
        ++emitted_;
    }
}

Trace
TraceGenerator::generate(std::size_t num_instructions,
                         unsigned thread_id) const
{
    Trace trace;
    trace.benchmark = profile_.name;
    trace.threadId = thread_id;
    trace.instructions.resize(num_instructions);
    Cursor cursor(*this, thread_id);
    cursor.emit(trace.instructions.data(), num_instructions);
    return trace;
}

std::vector<Trace>
TraceGenerator::generateThreads(std::size_t instructions_per_thread) const
{
    const unsigned threads =
        profile_.multithreaded ? profile_.numThreads : 1;
    std::vector<Trace> traces;
    traces.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        traces.push_back(generate(instructions_per_thread, t));
    return traces;
}

} // namespace sharch
