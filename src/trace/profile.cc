#include "trace/profile.hh"

#include "common/logging.hh"

namespace sharch {

namespace {

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * 1024;

BenchmarkProfile
make(const std::string &name, double load, double store, double branch,
     double mul, double dep, double hard_branch, std::uint64_t hot,
     double hot_frac, std::uint64_t ws, double alpha, double stream,
     std::uint64_t code)
{
    BenchmarkProfile p;
    p.name = name;
    p.loadFrac = load;
    p.storeFrac = store;
    p.branchFrac = branch;
    p.mulFrac = mul;
    p.meanDepDistance = dep;
    p.hardBranchFrac = hard_branch;
    p.hotBytes = hot;
    p.hotFrac = hot_frac;
    p.workingSetBytes = ws;
    p.zipfAlpha = alpha;
    p.streamFrac = stream;
    p.codeBytes = code;
    return p;
}

std::vector<BenchmarkProfile>
buildProfiles()
{
    std::vector<BenchmarkProfile> v;

    // Web serving: throughput-oriented, big code footprint, branchy,
    // medium working set.
    auto apache_p = make("apache", 0.24, 0.12, 0.18, 0.010, 12.0, 0.08,
                     8 * KiB, 0.38, 1 * MiB, 0.30, 0.05, 256 * KiB);
    apache_p.pointerChaseFrac = 0.30;
    v.push_back(apache_p);

    // Compression: strong value locality but serial dependency chains;
    // saturates around 256 KB of L2 (Fig. 14d peaks at 256 KB/1 Slice).
    auto bzip_p = make("bzip", 0.26, 0.14, 0.12, 0.020, 2.0, 0.07,
                     8 * KiB, 0.35, 300 * KiB, 0.30, 0.20, 32 * KiB);
    bzip_p.pointerChaseFrac = 0.35;
    v.push_back(bzip_p);

    // Compiler: moderate ILP and a ~1 MB working set; the paper's
    // most-discussed benchmark (Tables 4, 7; Fig. 14a/b).
    auto gcc_p = make("gcc", 0.25, 0.13, 0.16, 0.010, 9.0, 0.06,
                     8 * KiB, 0.33, 1536 * KiB, 0.35, 0.05, 128 * KiB);
    gcc_p.pointerChaseFrac = 0.35;
    v.push_back(gcc_p);

    // Path finding: pointer chasing over a graph far larger than any
    // L2 -- cache-insensitive (Fig. 13) and nearly serial.
    auto astar = make("astar", 0.30, 0.08, 0.15, 0.005, 2.5, 0.09,
                      4 * KiB, 0.35, 64 * MiB, 0.00, 0.00, 32 * KiB);
    astar.pointerChaseFrac = 0.85;
    v.push_back(astar);

    // Quantum simulation: long streaming vector sweeps -- lots of
    // independent work (scales with Slices) but no cache reuse.
    v.push_back(make("libquantum", 0.22, 0.10, 0.10, 0.020, 20.0, 0.02,
                     2 * KiB, 0.10, 32 * MiB, 0.05, 0.85, 16 * KiB));

    // Interpreter: large code, branchy, medium working set.
    auto perlbench_p = make("perlbench", 0.27, 0.15, 0.17, 0.005, 8.0, 0.06,
                     8 * KiB, 0.38, 600 * KiB, 0.30, 0.02, 256 * KiB);
    perlbench_p.pointerChaseFrac = 0.30;
    v.push_back(perlbench_p);

    // Chess: data-dependent branches, small tables.
    auto sjeng_p = make("sjeng", 0.21, 0.09, 0.18, 0.010, 5.0, 0.10,
                     8 * KiB, 0.40, 180 * KiB, 0.30, 0.00, 64 * KiB);
    sjeng_p.pointerChaseFrac = 0.30;
    v.push_back(sjeng_p);

    // HMM search: inner loop fits in the L1 and is a tight recurrence:
    // best served by a single Slice and 64 KB (Table 4) / tiny core
    // (Fig. 17's small-core workload).
    v.push_back(make("hmmer", 0.30, 0.12, 0.08, 0.030, 2.0, 0.03,
                     14 * KiB, 0.90, 40 * KiB, 0.80, 0.05, 32 * KiB));

    // Go: abundant ILP across candidate moves, saturates at a few
    // hundred KB -- the paper's big-core workload (Fig. 17).
    auto gobmk_p = make("gobmk", 0.30, 0.10, 0.16, 0.010, 14.0, 0.07,
                     8 * KiB, 0.18, 160 * KiB, 0.30, 0.00, 64 * KiB);
    gobmk_p.pointerChaseFrac = 0.70;
    v.push_back(gobmk_p);

    // Sparse network simplex: giant working set, very memory bound.
    auto mcf = make("mcf", 0.35, 0.10, 0.17, 0.002, 3.0, 0.07,
                    4 * KiB, 0.30, 6 * MiB, 0.30, 0.00, 16 * KiB);
    mcf.pointerChaseFrac = 0.80;
    v.push_back(mcf);

    // Discrete event simulation: the paper's most cache-sensitive
    // benchmark (Fig. 13).
    auto omnetpp = make("omnetpp", 0.31, 0.16, 0.15, 0.005, 5.0, 0.06,
                        4 * KiB, 0.30, 3 * MiB, 0.30, 0.00, 128 * KiB);
    omnetpp.pointerChaseFrac = 0.90;
    v.push_back(omnetpp);

    // Video encoding: data-parallel macroblock work.
    auto h264ref_p = make("h264ref", 0.28, 0.14, 0.10, 0.040, 16.0, 0.04,
                     12 * KiB, 0.45, 700 * KiB, 0.35, 0.15, 128 * KiB);
    h264ref_p.pointerChaseFrac = 0.25;
    v.push_back(h264ref_p);

    // PARSEC subset: four threads on four VCores sharing an L2
    // (section 5.3); intra-thread ILP is low so per-VCore Slice
    // scaling is bounded by ~2.
    auto dedup = make("dedup", 0.28, 0.16, 0.12, 0.010, 2.0, 0.06,
                      8 * KiB, 0.45, 2 * MiB, 0.40, 0.10, 64 * KiB);
    dedup.multithreaded = true;
    dedup.sharedFrac = 0.15;
    v.push_back(dedup);

    auto swaptions = make("swaptions", 0.25, 0.10, 0.10, 0.060, 2.0,
                          0.04, 10 * KiB, 0.75, 120 * KiB, 1.00, 0.02,
                          32 * KiB);
    swaptions.multithreaded = true;
    swaptions.sharedFrac = 0.02;
    v.push_back(swaptions);

    auto ferret = make("ferret", 0.30, 0.12, 0.14, 0.010, 2.0, 0.06,
                       6 * KiB, 0.30, 1536 * KiB, 0.80, 0.05, 64 * KiB);
    ferret.multithreaded = true;
    ferret.sharedFrac = 0.10;
    v.push_back(ferret);

    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
builtinProfiles()
{
    static const std::vector<BenchmarkProfile> profiles = buildProfiles();
    return profiles;
}

const BenchmarkProfile &
profileFor(const std::string &name)
{
    for (const auto &p : builtinProfiles()) {
        if (p.name == name)
            return p;
    }
    SHARCH_FATAL("unknown benchmark profile: ", name);
}

bool
hasProfile(const std::string &name)
{
    for (const auto &p : builtinProfiles()) {
        if (p.name == name)
            return true;
    }
    return false;
}

std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (const auto &p : builtinProfiles())
        names.push_back(p.name);
    return names;
}

std::vector<BenchmarkProfile>
gccPhaseProfiles()
{
    // Ten phases of gcc (Table 7): early phases are ILP-rich with a
    // large footprint (they reward many Slices and a big L2); late
    // phases are serial with a small footprint.  The paper's optimal
    // configurations drift from (1024 KB, 5 Slices) down to
    // (64 KB, 1 Slice) across the metrics.
    struct PhaseKnobs
    {
        double dep;
        std::uint64_t ws;
        double hotFrac;
        double pointerChase;
    };
    static const PhaseKnobs knobs[10] = {
        {10.0, 1536 * KiB, 0.20, 0.45},
        {9.0,  1536 * KiB, 0.22, 0.45},
        {9.0,  1024 * KiB, 0.22, 0.40},
        {8.0,   768 * KiB, 0.25, 0.40},
        {8.0,  1024 * KiB, 0.22, 0.45},
        {6.0,   512 * KiB, 0.25, 0.40},
        {7.0,   768 * KiB, 0.25, 0.40},
        {5.0,   256 * KiB, 0.28, 0.45},
        {4.0,   192 * KiB, 0.28, 0.45},
        {4.0,   512 * KiB, 0.25, 0.40},
    };

    std::vector<BenchmarkProfile> phases;
    const BenchmarkProfile &base = profileFor("gcc");
    for (int i = 0; i < 10; ++i) {
        BenchmarkProfile p = base;
        p.name = "gcc.phase" + std::to_string(i + 1);
        p.meanDepDistance = knobs[i].dep;
        p.workingSetBytes = knobs[i].ws;
        p.zipfAlpha = 0.30;
        p.hotFrac = knobs[i].hotFrac;
        p.pointerChaseFrac = knobs[i].pointerChase;
        phases.push_back(std::move(p));
    }
    return phases;
}

} // namespace sharch
