#include "trace/instruction.hh"

#include <unordered_map>
#include <unordered_set>

#include "common/math_util.hh"

namespace sharch {

const char *
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::IntAlu: return "alu";
      case OpClass::IntMul: return "mul";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::Branch: return "branch";
      default: return "unknown";
    }
}

TraceSummary
summarize(const Trace &trace)
{
    TraceSummary s;
    if (trace.empty())
        return s;

    std::uint64_t loads = 0, stores = 0, branches = 0, muls = 0;
    std::uint64_t taken = 0;
    std::uint64_t depSamples = 0;
    double depTotal = 0.0;
    std::unordered_map<RegIndex, std::uint64_t> lastWriter;
    std::unordered_set<Addr> lines;

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceInst &ti = trace[i];
        switch (ti.op) {
          case OpClass::Load: ++loads; break;
          case OpClass::Store: ++stores; break;
          case OpClass::Branch:
            ++branches;
            if (ti.taken)
                ++taken;
            break;
          case OpClass::IntMul: ++muls; break;
          default: break;
        }
        if (ti.isMemory())
            lines.insert(ti.effAddr >> 6);
        for (RegIndex src : {ti.src1, ti.src2}) {
            if (src == kNoReg)
                continue;
            auto it = lastWriter.find(src);
            if (it != lastWriter.end()) {
                depTotal += static_cast<double>(i - it->second);
                ++depSamples;
            }
        }
        if (ti.dst != kNoReg)
            lastWriter[ti.dst] = i;
    }

    const double n = static_cast<double>(trace.size());
    s.loadFrac = loads / n;
    s.storeFrac = stores / n;
    s.branchFrac = branches / n;
    s.mulFrac = muls / n;
    s.takenFrac = safeDiv(static_cast<double>(taken),
                          static_cast<double>(branches));
    s.meanDepDistance = safeDiv(depTotal,
                                static_cast<double>(depSamples));
    s.distinctLines = lines.size();
    return s;
}

} // namespace sharch
