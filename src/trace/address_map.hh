/**
 * @file
 * Virtual address map of a synthetic thread.
 *
 * Regions are disjoint per thread except the shared heap, which all
 * threads of a VM map at the same base (the source of coherence
 * traffic).  The cache-prewarming logic (VmSim::prewarm) uses this map
 * to install each region's steady-state-popular lines before timing
 * starts, eliminating the compulsory-miss transient a short trace
 * would otherwise over-weight.
 */

#ifndef SHARCH_TRACE_ADDRESS_MAP_HH
#define SHARCH_TRACE_ADDRESS_MAP_HH

#include "common/types.hh"

namespace sharch {

namespace addrmap {

inline constexpr Addr kCodeBase = 0x0040'0000;
inline constexpr Addr kHotBase = 0x1000'0000;
inline constexpr Addr kHeapBase = 0x4000'0000;
inline constexpr Addr kStreamBase = 0x8000'0000;
inline constexpr Addr kSharedBase = 0xc000'0000;
inline constexpr Addr kThreadStride = 0x0100'0000;
inline constexpr Addr kLine = 64;

/** Base of a per-thread region. */
inline constexpr Addr
threadBase(Addr region_base, unsigned thread_id)
{
    return region_base + thread_id * kThreadStride;
}

} // namespace addrmap

} // namespace sharch

#endif // SHARCH_TRACE_ADDRESS_MAP_HH
