/**
 * @file
 * Statistical benchmark profiles.
 *
 * The paper evaluates "the complete SPEC CINT2006 benchmark suite, a
 * static web-serving workload of Apache driven by ApacheBench, and a
 * subset of PARSEC" (section 5.2) via gem5 traces.  SPEC is licensed
 * and the original traces are unavailable, so we synthesize traces from
 * per-benchmark statistical profiles instead (see DESIGN.md).  Each
 * profile controls the knobs that the Sharing Architecture is actually
 * sensitive to: instruction mix, register dependency distance (ILP),
 * branch predictability, and the memory reuse/working-set structure
 * (cache sensitivity).
 *
 * Profiles are calibrated so the paper's qualitative facts hold; see
 * EXPERIMENTS.md for the measured shapes.
 */

#ifndef SHARCH_TRACE_PROFILE_HH
#define SHARCH_TRACE_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sharch {

/** Everything the synthetic generator needs to mimic one benchmark. */
struct BenchmarkProfile
{
    std::string name;

    // Instruction mix (fractions of all instructions; the rest are
    // single-cycle ALU ops).
    double loadFrac = 0.25;
    double storeFrac = 0.10;
    double branchFrac = 0.15;
    double mulFrac = 0.01;

    /**
     * Mean register dependency distance (instructions between producer
     * and consumer).  Small values mean serial chains and little ILP;
     * large values mean many independent chains that scale with Slices.
     */
    double meanDepDistance = 6.0;

    /** Fraction of static branch sites that are data-dependent coins. */
    double hardBranchFrac = 0.10;
    /** Takenness bias of easy branch sites. */
    double easyBranchBias = 0.06;
    /** Static branch sites in the program skeleton. */
    unsigned numBlocks = 2048;
    /** Mean basic-block length (instructions). */
    double meanBlockLen = 7.0;
    /** Static code footprint in bytes (drives the L1 I-cache). */
    std::uint64_t codeBytes = 64 * 1024;

    // Memory behaviour.
    std::uint64_t hotBytes = 8 * 1024; //!< stack-like L1-resident region
    double hotFrac = 0.35;             //!< refs to the hot region
    std::uint64_t workingSetBytes = 512 * 1024; //!< heap region size
    double zipfAlpha = 0.8;            //!< heap locality skew
    double streamFrac = 0.05;          //!< sequential streaming refs
    /** Probability a load reads a recently stored address. */
    double storeLoadConflictFrac = 0.02;
    /**
     * Fraction of loads whose address comes from a dependence chain
     * (pointer chasing): these serialize misses and make the workload
     * memory-latency-bound instead of bandwidth-bound.
     */
    double pointerChaseFrac = 0.15;

    // Multithreaded (PARSEC) workloads.
    bool multithreaded = false;
    unsigned numThreads = 4;
    double sharedFrac = 0.0;   //!< heap refs hitting the shared region
    double sharedWriteFrac = 0.3; //!< of shared refs, fraction written
    std::uint64_t sharedBytes = 256 * 1024;
};

/**
 * The fifteen evaluation workloads of the paper: apache, the SPEC
 * CINT2006 benchmarks used in the figures (bzip, gcc, astar,
 * libquantum, perlbench, sjeng, hmmer, gobmk, mcf, omnetpp, h264ref),
 * and the PARSEC subset (dedup, swaptions, ferret).
 */
const std::vector<BenchmarkProfile> &builtinProfiles();

/** Profile by name; fatal() when unknown. */
const BenchmarkProfile &profileFor(const std::string &name);

/** True when a builtin profile with this name exists. */
bool hasProfile(const std::string &name);

/** Names of all builtin profiles, in the paper's plotting order. */
std::vector<std::string> benchmarkNames();

/**
 * The ten gcc program phases of Table 7: the same benchmark drifting
 * from large-working-set, ILP-rich phases to small, serial ones.
 */
std::vector<BenchmarkProfile> gccPhaseProfiles();

} // namespace sharch

#endif // SHARCH_TRACE_PROFILE_HH
