#include "trace/inst_source.hh"

#include <algorithm>

namespace sharch {

bool
parseTraceMode(std::string_view text, TraceMode &out)
{
    if (text == "stream") {
        out = TraceMode::Stream;
        return true;
    }
    if (text == "materialize") {
        out = TraceMode::Materialize;
        return true;
    }
    return false;
}

const char *
traceModeName(TraceMode mode)
{
    return mode == TraceMode::Stream ? "stream" : "materialize";
}

StreamingTraceSource::StreamingTraceSource(const TraceGenerator &gen,
                                           std::uint64_t limit,
                                           unsigned thread_id)
    : cursor_(gen, thread_id), limit_(limit)
{
    buffer_.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(limit, kBufferInsts)));
}

StreamingTraceSource::StreamingTraceSource(
    std::shared_ptr<const TraceGenerator> gen, std::uint64_t limit,
    unsigned thread_id)
    : owned_(std::move(gen)), cursor_(*owned_, thread_id),
      limit_(limit)
{
    SHARCH_ASSERT(owned_ != nullptr,
                  "streaming source needs a generator");
    buffer_.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(limit, kBufferInsts)));
}

bool
StreamingTraceSource::refill()
{
    if (produced_ >= limit_)
        return false;
    const auto n = static_cast<std::size_t>(std::min<std::uint64_t>(
        limit_ - produced_, kBufferInsts));
    buffer_.resize(n);
    cursor_.emit(buffer_.data(), n);
    produced_ += n;
    setWindow(buffer_.data(), buffer_.data() + n);
    return true;
}

MaterializedTraceSource::MaterializedTraceSource(const Trace &trace)
    : trace_(&trace)
{
}

MaterializedTraceSource::MaterializedTraceSource(TraceBundlePtr bundle,
                                                 std::size_t index)
    : bundle_(std::move(bundle))
{
    SHARCH_ASSERT(bundle_ && index < bundle_->size(),
                  "materialized source index out of range");
    trace_ = &(*bundle_)[index];
}

bool
MaterializedTraceSource::refill()
{
    if (served_ || trace_->empty())
        return false;
    served_ = true;
    setWindow(trace_->instructions.data(),
              trace_->instructions.data() + trace_->instructions.size());
    return true;
}

std::vector<std::unique_ptr<InstSource>>
streamSources(std::shared_ptr<const TraceGenerator> gen,
              std::uint64_t instructions_per_thread)
{
    SHARCH_ASSERT(gen != nullptr, "streamSources needs a generator");
    const unsigned threads =
        gen->profile().multithreaded ? gen->profile().numThreads : 1;
    std::vector<std::unique_ptr<InstSource>> sources;
    sources.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        sources.push_back(std::make_unique<StreamingTraceSource>(
            gen, instructions_per_thread, t));
    return sources;
}

std::vector<std::unique_ptr<InstSource>>
materializedSources(TraceBundlePtr bundle)
{
    SHARCH_ASSERT(bundle != nullptr, "materializedSources needs traces");
    std::vector<std::unique_ptr<InstSource>> sources;
    sources.reserve(bundle->size());
    for (std::size_t i = 0; i < bundle->size(); ++i)
        sources.push_back(
            std::make_unique<MaterializedTraceSource>(bundle, i));
    return sources;
}

} // namespace sharch
