/**
 * @file
 * Synthetic trace generation from a BenchmarkProfile.
 *
 * The generator first builds a static program skeleton -- basic blocks
 * with fixed PCs, per-site branch biases and fixed taken targets -- and
 * then random-walks it, drawing register dependencies and memory
 * addresses from the profile's distributions.  The static skeleton
 * makes the front end honest: the same PC always maps to the same
 * Slice, the same predictor entry, and the same BTB target, exactly
 * the property the Sharing Architecture's interleaved fetch relies on
 * (section 3.1).
 *
 * Generation is deterministic in (profile, seed, thread id).
 */

#ifndef SHARCH_TRACE_GENERATOR_HH
#define SHARCH_TRACE_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "trace/instruction.hh"
#include "trace/profile.hh"

namespace sharch {

/** Generates deterministic synthetic traces for one benchmark. */
class TraceGenerator
{
  public:
    TraceGenerator(const BenchmarkProfile &profile,
                   std::uint64_t seed = 1);

    /** Generate one thread's trace of @p num_instructions. */
    Trace generate(std::size_t num_instructions,
                   unsigned thread_id = 0) const;

    /**
     * Generate profile.numThreads traces for a multithreaded workload
     * (or a single trace when the profile is single-threaded).
     */
    std::vector<Trace> generateThreads(
        std::size_t instructions_per_thread) const;

    /** Number of basic blocks in the static skeleton. */
    std::size_t numBlocks() const { return blocks_.size(); }

  private:
    /** One basic block of the static program skeleton. */
    struct Block
    {
        Addr startPc = 0;
        unsigned len = 1;        //!< instructions incl. the terminator
        double takenBias = 0.5;  //!< P(taken) at this site
        unsigned takenTarget = 0;
        unsigned fallthrough = 0;
    };

    BenchmarkProfile profile_;
    std::uint64_t seed_;
    std::vector<Block> blocks_;

    void buildSkeleton();
};

} // namespace sharch

#endif // SHARCH_TRACE_GENERATOR_HH
