/**
 * @file
 * Synthetic trace generation from a BenchmarkProfile.
 *
 * The generator first builds a static program skeleton -- basic blocks
 * with fixed PCs, per-site branch biases and fixed taken targets -- and
 * then random-walks it, drawing register dependencies and memory
 * addresses from the profile's distributions.  The static skeleton
 * makes the front end honest: the same PC always maps to the same
 * Slice, the same predictor entry, and the same BTB target, exactly
 * the property the Sharing Architecture's interleaved fetch relies on
 * (section 3.1).
 *
 * Generation is deterministic in (profile, seed, thread id).  The walk
 * itself is exposed two ways:
 *
 *  - generate()/generateThreads() materialize a bounded prefix into a
 *    Trace vector (multi-pass consumers, trace I/O, tests);
 *  - Cursor is an O(1)-state incremental view of the *same* walk:
 *    emit() produces the next n instructions on demand.  Because the
 *    length bound in generate() only ever cuts the walk *between*
 *    instructions (no RNG draw happens for an instruction that is not
 *    emitted), Cursor's output is bit-identical to the corresponding
 *    prefix of generate() by construction.  The streaming trace
 *    pipeline (trace/inst_source.hh) is built on this.
 */

#ifndef SHARCH_TRACE_GENERATOR_HH
#define SHARCH_TRACE_GENERATOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "trace/instruction.hh"
#include "trace/profile.hh"

namespace sharch {

/** Generates deterministic synthetic traces for one benchmark. */
class TraceGenerator
{
  public:
    TraceGenerator(const BenchmarkProfile &profile,
                   std::uint64_t seed = 1);

    /** Generate one thread's trace of @p num_instructions. */
    Trace generate(std::size_t num_instructions,
                   unsigned thread_id = 0) const;

    /**
     * Generate profile.numThreads traces for a multithreaded workload
     * (or a single trace when the profile is single-threaded).
     */
    std::vector<Trace> generateThreads(
        std::size_t instructions_per_thread) const;

    /** Number of basic blocks in the static skeleton. */
    std::size_t numBlocks() const { return blocks_.size(); }

    const BenchmarkProfile &profile() const { return profile_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * An incremental cursor over the random walk of one thread.
     *
     * State is O(1): the RNG, the position in the skeleton, and the
     * small recent-stores ring -- independent of how many instructions
     * have been emitted.  The cursor must not outlive its generator
     * (it borrows the skeleton).
     *
     * Determinism contract: for any n, the first n instructions
     * emitted by a fresh Cursor equal generate(n, thread_id)
     * byte-for-byte, and draw-for-draw on the underlying RNG.
     */
    class Cursor
    {
      public:
        Cursor(const TraceGenerator &gen, unsigned thread_id);

        /** Emit the next @p n instructions of the walk into @p out. */
        void emit(TraceInst *out, std::size_t n);

        /** Instructions emitted so far. */
        std::uint64_t emitted() const { return emitted_; }

      private:
        const TraceGenerator *gen_;
        Rng rng_;

        // Derived constants of the walk (profile-dependent).
        Addr hotBase_;
        Addr heapBase_;
        Addr streamBase_;
        std::uint64_t hotLines_;
        std::uint64_t streamLines_;
        double pLoad_;
        double pStore_;
        double pMul_;
        unsigned numChains_;
        ZipfDist wsZipf_;     //!< working-set lines, profile alpha
        ZipfDist sharedZipf_; //!< shared-region lines, profile alpha

        // Walk state (the only part that evolves per instruction).
        std::array<Addr, 16> recentStores_{};
        unsigned recentStoreCount_ = 0;
        std::uint64_t streamPtr_ = 0;
        unsigned tempRr_ = 0;
        std::uint64_t sinceBaseUpdate_ = 0;
        std::size_t blockIdx_ = 0;
        unsigned posInBlock_ = 0; //!< body index; len-1 == terminator
        std::uint64_t emitted_ = 0;

        RegIndex pickChain();
        RegIndex pickAddrSrc();
        RegIndex pickTemp();
        RegIndex pickTempSrc();
        RegIndex pickCheapSrc();
        Addr genAddr(bool is_load);
    };

  private:
    /** One basic block of the static program skeleton. */
    struct Block
    {
        Addr startPc = 0;
        unsigned len = 1;        //!< instructions incl. the terminator
        double takenBias = 0.5;  //!< P(taken) at this site
        unsigned takenTarget = 0;
        unsigned fallthrough = 0;
    };

    BenchmarkProfile profile_;
    std::uint64_t seed_;
    std::vector<Block> blocks_;

    void buildSkeleton();
};

} // namespace sharch

#endif // SHARCH_TRACE_GENERATOR_HH
