/**
 * @file
 * Binary trace file I/O.
 *
 * SSim is trace-driven; while this reproduction usually synthesizes
 * traces on the fly, persisted traces make runs shareable and let
 * external generators (e.g., a real gem5 pipeline) feed the simulator.
 * The format is a little-endian packed record stream:
 *
 *   header: magic "SHTR", u32 version, u32 thread id,
 *           u64 instruction count, benchmark name (u32 len + bytes)
 *   record: u64 pc, u8 op, u16 src1, u16 src2, u16 dst,
 *           u64 effAddr, u64 target, u8 taken
 *
 * Reading never throws; failures are reported via the return value.
 */

#ifndef SHARCH_TRACE_TRACE_IO_HH
#define SHARCH_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/instruction.hh"

namespace sharch {

/** Format version written by writeTrace. */
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/** Serialize @p trace to @p out.  @return false on stream failure. */
bool writeTrace(const Trace &trace, std::ostream &out);

/** Serialize to a file.  @return false on I/O failure. */
bool writeTraceFile(const Trace &trace, const std::string &path);

/**
 * Parse one trace from @p in.
 * @return nullopt on malformed input or stream failure.
 */
std::optional<Trace> readTrace(std::istream &in);

/** Read from a file. */
std::optional<Trace> readTraceFile(const std::string &path);

} // namespace sharch

#endif // SHARCH_TRACE_TRACE_IO_HH
