/**
 * @file
 * Pull-based instruction sources: the streaming trace pipeline.
 *
 * Historically the simulator materialized every thread's full trace
 * into a std::vector<TraceInst> (32 B per instruction) before the
 * timing walk consumed it.  For single-pass consumers -- which is
 * every study sweep -- that costs a full write + read of the trace
 * through memory and makes resident trace storage scale with the
 * instruction budget.  InstSource inverts the flow: the consumer
 * *pulls* instructions, and the producer materializes at most a small
 * refill buffer.
 *
 * The API is deliberately streambuf-shaped: the hot path reads a
 * contiguous window() of instructions and consume()s them with zero
 * virtual calls per instruction; the single virtual, refill(), runs
 * once per buffer (every kBufferInsts instructions for the streaming
 * source, exactly once for the materialized one).
 *
 * Determinism contract: for a given (profile, seed, thread id) and
 * instruction budget, StreamingTraceSource emits byte-for-byte the
 * sequence TraceGenerator::generate() materializes (see the Cursor
 * prefix-identity argument in trace/generator.hh), so SimStats and
 * every sharch-report-v1 document are bit-identical across
 * --trace-mode stream and materialize.
 */

#ifndef SHARCH_TRACE_INST_SOURCE_HH
#define SHARCH_TRACE_INST_SOURCE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/logging.hh"
#include "trace/generator.hh"
#include "trace/instruction.hh"

namespace sharch {

/**
 * An immutable, shareable set of generated per-thread traces.  Trace
 * storage is the dominant memory consumer of long multi-benchmark
 * batches (instructions x threads x 32 B per benchmark), so generated
 * bundles are reference-counted: a cache can keep a bounded number of
 * benchmarks hot while in-flight simulations pin the bundle they
 * replay, and evicted benchmarks regenerate deterministically on next
 * use.  Only the materialized path allocates bundles at all.
 */
using TraceBundle = std::vector<Trace>;
using TraceBundlePtr = std::shared_ptr<const TraceBundle>;

/** How simulations obtain their instruction stream. */
enum class TraceMode
{
    Stream,      //!< fuse generation into the sim loop (single pass)
    Materialize, //!< pre-generate full Trace vectors (multi-pass)
};

/** Parse "stream" / "materialize"; @return false on anything else. */
bool parseTraceMode(std::string_view text, TraceMode &out);

/** Printable mode name ("stream" / "materialize"). */
const char *traceModeName(TraceMode mode);

/**
 * A bounded, single-pass instruction stream for one thread.
 *
 * Usage (hot loop):
 * @code
 *   std::size_t avail;
 *   while (const TraceInst *w = src.window(avail)) {
 *       for (std::size_t i = 0; i < avail; ++i)
 *           process(w[i]);
 *       src.consume(avail);
 *   }
 * @endcode
 *
 * next()/peek() are conveniences for callers that step one
 * instruction at a time; they sit on the same window machinery.
 */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    InstSource(const InstSource &) = delete;
    InstSource &operator=(const InstSource &) = delete;

    /** True when the stream has no further instructions. */
    bool
    exhausted()
    {
        return cur_ != end_ ? false : !refillWindow();
    }

    /**
     * The current contiguous run of instructions, or nullptr at end
     * of stream.  @p avail receives the run length (0 at end).  The
     * pointer stays valid until the next consume() past the window,
     * skip(), or destruction.
     */
    const TraceInst *
    window(std::size_t &avail)
    {
        if (cur_ == end_ && !refillWindow()) {
            avail = 0;
            return nullptr;
        }
        avail = static_cast<std::size_t>(end_ - cur_);
        return cur_;
    }

    /** Advance past @p n instructions of the current window. */
    void
    consume(std::size_t n)
    {
        SHARCH_DCHECK(n <= static_cast<std::size_t>(end_ - cur_),
                      "consume past the current window");
        cur_ += n;
        consumed_ += n;
    }

    /** Next instruction without consuming it.  Requires !exhausted(). */
    const TraceInst &
    peek()
    {
        SHARCH_DCHECK(cur_ != end_ || !exhausted(),
                      "peek on an exhausted source");
        if (cur_ == end_)
            refillWindow();
        return *cur_;
    }

    /** Consume and return the next instruction.  Requires !exhausted(). */
    const TraceInst &
    next()
    {
        const TraceInst &inst = peek();
        ++cur_;
        ++consumed_;
        return inst;
    }

    /** Instructions consumed (or skipped) so far. */
    std::uint64_t consumed() const { return consumed_; }

    /**
     * Fast-forward past up to @p n instructions without timing them;
     * @return the number actually skipped (< n only at end of
     * stream).  This is the seam for sampled simulation: a functional
     * fast-forward consumes the skipped region here, keeping the RNG
     * stream aligned, then resumes detailed timing.
     */
    std::uint64_t
    skip(std::uint64_t n)
    {
        std::uint64_t skipped = 0;
        while (skipped < n) {
            if (cur_ == end_ && !refillWindow())
                break;
            const auto run = std::min<std::uint64_t>(
                n - skipped, static_cast<std::uint64_t>(end_ - cur_));
            cur_ += run;
            skipped += run;
        }
        consumed_ += skipped;
        return skipped;
    }

  protected:
    InstSource() = default;

    /**
     * Produce the next window.  Implementations call setWindow() with
     * a non-empty range and return true, or return false at end of
     * stream.  Called only when the previous window is fully consumed.
     */
    virtual bool refill() = 0;

    /** Publish @p begin .. @p end as the current window. */
    void
    setWindow(const TraceInst *begin, const TraceInst *end)
    {
        cur_ = begin;
        end_ = end;
    }

  private:
    bool
    refillWindow()
    {
        if (finished_)
            return false;
        if (!refill() || cur_ == end_) {
            finished_ = true;
            return false;
        }
        return true;
    }

    const TraceInst *cur_ = nullptr;
    const TraceInst *end_ = nullptr;
    std::uint64_t consumed_ = 0;
    bool finished_ = false;
};

/**
 * Streams a bounded prefix of one thread's random walk, generating
 * instructions on demand into a small refill buffer.  Resident state
 * is O(kBufferInsts) regardless of the instruction budget -- this is
 * what makes billion-instruction runs independent of trace memory.
 */
class StreamingTraceSource final : public InstSource
{
  public:
    /** Refill-buffer capacity in instructions (32 KB of TraceInst). */
    static constexpr std::size_t kBufferInsts = 1024;

    /**
     * Stream @p limit instructions of @p gen's walk for @p thread_id.
     * Borrows @p gen, which must outlive the source.
     */
    StreamingTraceSource(const TraceGenerator &gen, std::uint64_t limit,
                         unsigned thread_id = 0);

    /** As above but shares ownership of the generator. */
    StreamingTraceSource(std::shared_ptr<const TraceGenerator> gen,
                         std::uint64_t limit, unsigned thread_id = 0);

    /** Total instructions this source will emit. */
    std::uint64_t limit() const { return limit_; }

    /**
     * Resident buffer capacity in instructions.  Exposed so tests can
     * assert streaming storage stays O(buffer), not O(instructions).
     */
    std::size_t bufferCapacity() const { return buffer_.capacity(); }

  protected:
    bool refill() override;

  private:
    std::shared_ptr<const TraceGenerator> owned_; //!< may be null
    TraceGenerator::Cursor cursor_;
    std::uint64_t limit_;
    std::uint64_t produced_ = 0;
    std::vector<TraceInst> buffer_;
};

/**
 * Serves an already-materialized Trace as a single window.  Used by
 * multi-pass consumers (trace I/O round-trips, calibration summaries,
 * replay-heavy tests) and as the compatibility path for callers that
 * still hold Trace vectors.
 */
class MaterializedTraceSource final : public InstSource
{
  public:
    /** Borrow @p trace, which must outlive the source. */
    explicit MaterializedTraceSource(const Trace &trace);

    /** Pin @p bundle and serve its @p index-th thread trace. */
    MaterializedTraceSource(TraceBundlePtr bundle, std::size_t index);

  protected:
    bool refill() override;

  private:
    TraceBundlePtr bundle_; //!< null when borrowing
    const Trace *trace_;
    bool served_ = false;
};

/**
 * One streaming source per thread of @p gen's profile, each bounded
 * to @p instructions_per_thread.  The generator is shared by all
 * sources (the skeleton is immutable; each cursor owns its RNG).
 */
std::vector<std::unique_ptr<InstSource>> streamSources(
    std::shared_ptr<const TraceGenerator> gen,
    std::uint64_t instructions_per_thread);

/** One pinning materialized source per thread trace of @p bundle. */
std::vector<std::unique_ptr<InstSource>> materializedSources(
    TraceBundlePtr bundle);

} // namespace sharch

#endif // SHARCH_TRACE_INST_SOURCE_HH
