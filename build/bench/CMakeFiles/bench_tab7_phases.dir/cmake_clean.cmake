file(REMOVE_RECURSE
  "CMakeFiles/bench_tab7_phases.dir/bench_tab7_phases.cpp.o"
  "CMakeFiles/bench_tab7_phases.dir/bench_tab7_phases.cpp.o.d"
  "bench_tab7_phases"
  "bench_tab7_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab7_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
