# Empty compiler generated dependencies file for bench_tab7_phases.
# This may be replaced when dependencies are built.
