file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_vs_static.dir/bench_fig15_vs_static.cpp.o"
  "CMakeFiles/bench_fig15_vs_static.dir/bench_fig15_vs_static.cpp.o.d"
  "bench_fig15_vs_static"
  "bench_fig15_vs_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
