# Empty dependencies file for bench_fig15_vs_static.
# This may be replaced when dependencies are built.
