file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_datacenter.dir/bench_fig17_datacenter.cpp.o"
  "CMakeFiles/bench_fig17_datacenter.dir/bench_fig17_datacenter.cpp.o.d"
  "bench_fig17_datacenter"
  "bench_fig17_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
