
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_scalability.cpp" "bench/CMakeFiles/bench_fig12_scalability.dir/bench_fig12_scalability.cpp.o" "gcc" "bench/CMakeFiles/bench_fig12_scalability.dir/bench_fig12_scalability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/econ/CMakeFiles/sharch_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sharch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/area/CMakeFiles/sharch_area.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sharch_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/sharch_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/sharch_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sharch_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sharch_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/sharch_config.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sharch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
