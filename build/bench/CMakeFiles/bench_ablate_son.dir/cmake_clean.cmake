file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_son.dir/bench_ablate_son.cpp.o"
  "CMakeFiles/bench_ablate_son.dir/bench_ablate_son.cpp.o.d"
  "bench_ablate_son"
  "bench_ablate_son.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_son.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
