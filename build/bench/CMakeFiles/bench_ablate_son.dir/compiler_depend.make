# Empty compiler generated dependencies file for bench_ablate_son.
# This may be replaced when dependencies are built.
