file(REMOVE_RECURSE
  "CMakeFiles/bench_tab6_markets.dir/bench_tab6_markets.cpp.o"
  "CMakeFiles/bench_tab6_markets.dir/bench_tab6_markets.cpp.o.d"
  "bench_tab6_markets"
  "bench_tab6_markets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_markets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
