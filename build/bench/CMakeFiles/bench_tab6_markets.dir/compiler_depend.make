# Empty compiler generated dependencies file for bench_tab6_markets.
# This may be replaced when dependencies are built.
