file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_vs_hetero.dir/bench_fig16_vs_hetero.cpp.o"
  "CMakeFiles/bench_fig16_vs_hetero.dir/bench_fig16_vs_hetero.cpp.o.d"
  "bench_fig16_vs_hetero"
  "bench_fig16_vs_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_vs_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
