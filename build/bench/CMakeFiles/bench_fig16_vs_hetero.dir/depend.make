# Empty dependencies file for bench_fig16_vs_hetero.
# This may be replaced when dependencies are built.
