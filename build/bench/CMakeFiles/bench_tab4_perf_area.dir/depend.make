# Empty dependencies file for bench_tab4_perf_area.
# This may be replaced when dependencies are built.
