file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_perf_area.dir/bench_tab4_perf_area.cpp.o"
  "CMakeFiles/bench_tab4_perf_area.dir/bench_tab4_perf_area.cpp.o.d"
  "bench_tab4_perf_area"
  "bench_tab4_perf_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_perf_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
