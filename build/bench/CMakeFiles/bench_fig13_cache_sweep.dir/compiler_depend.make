# Empty compiler generated dependencies file for bench_fig13_cache_sweep.
# This may be replaced when dependencies are built.
