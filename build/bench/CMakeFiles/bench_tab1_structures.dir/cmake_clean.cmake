file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_structures.dir/bench_tab1_structures.cpp.o"
  "CMakeFiles/bench_tab1_structures.dir/bench_tab1_structures.cpp.o.d"
  "bench_tab1_structures"
  "bench_tab1_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
