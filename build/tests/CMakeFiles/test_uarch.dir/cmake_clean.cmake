file(REMOVE_RECURSE
  "CMakeFiles/test_uarch.dir/test_uarch.cpp.o"
  "CMakeFiles/test_uarch.dir/test_uarch.cpp.o.d"
  "test_uarch"
  "test_uarch.pdb"
  "test_uarch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
