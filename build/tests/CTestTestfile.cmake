# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_xml[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_area[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_econ[1]_include.cmake")
include("/root/repo/build/tests/test_hyper[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
