file(REMOVE_RECURSE
  "CMakeFiles/sharch_cache.dir/cache_model.cc.o"
  "CMakeFiles/sharch_cache.dir/cache_model.cc.o.d"
  "CMakeFiles/sharch_cache.dir/l2_system.cc.o"
  "CMakeFiles/sharch_cache.dir/l2_system.cc.o.d"
  "libsharch_cache.a"
  "libsharch_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharch_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
