file(REMOVE_RECURSE
  "libsharch_cache.a"
)
