# Empty compiler generated dependencies file for sharch_cache.
# This may be replaced when dependencies are built.
