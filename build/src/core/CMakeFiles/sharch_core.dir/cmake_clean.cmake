file(REMOVE_RECURSE
  "CMakeFiles/sharch_core.dir/perf_model.cc.o"
  "CMakeFiles/sharch_core.dir/perf_model.cc.o.d"
  "CMakeFiles/sharch_core.dir/reconfig.cc.o"
  "CMakeFiles/sharch_core.dir/reconfig.cc.o.d"
  "CMakeFiles/sharch_core.dir/vcore_sim.cc.o"
  "CMakeFiles/sharch_core.dir/vcore_sim.cc.o.d"
  "CMakeFiles/sharch_core.dir/vm_sim.cc.o"
  "CMakeFiles/sharch_core.dir/vm_sim.cc.o.d"
  "libsharch_core.a"
  "libsharch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
