file(REMOVE_RECURSE
  "libsharch_core.a"
)
