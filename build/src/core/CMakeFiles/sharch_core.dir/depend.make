# Empty dependencies file for sharch_core.
# This may be replaced when dependencies are built.
