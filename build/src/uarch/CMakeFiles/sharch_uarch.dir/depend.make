# Empty dependencies file for sharch_uarch.
# This may be replaced when dependencies are built.
