
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch_predictor.cc" "src/uarch/CMakeFiles/sharch_uarch.dir/branch_predictor.cc.o" "gcc" "src/uarch/CMakeFiles/sharch_uarch.dir/branch_predictor.cc.o.d"
  "/root/repo/src/uarch/mem_dep.cc" "src/uarch/CMakeFiles/sharch_uarch.dir/mem_dep.cc.o" "gcc" "src/uarch/CMakeFiles/sharch_uarch.dir/mem_dep.cc.o.d"
  "/root/repo/src/uarch/rename.cc" "src/uarch/CMakeFiles/sharch_uarch.dir/rename.cc.o" "gcc" "src/uarch/CMakeFiles/sharch_uarch.dir/rename.cc.o.d"
  "/root/repo/src/uarch/structure_policy.cc" "src/uarch/CMakeFiles/sharch_uarch.dir/structure_policy.cc.o" "gcc" "src/uarch/CMakeFiles/sharch_uarch.dir/structure_policy.cc.o.d"
  "/root/repo/src/uarch/structures.cc" "src/uarch/CMakeFiles/sharch_uarch.dir/structures.cc.o" "gcc" "src/uarch/CMakeFiles/sharch_uarch.dir/structures.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sharch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/sharch_config.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sharch_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/sharch_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
