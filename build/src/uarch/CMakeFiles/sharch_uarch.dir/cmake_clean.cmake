file(REMOVE_RECURSE
  "CMakeFiles/sharch_uarch.dir/branch_predictor.cc.o"
  "CMakeFiles/sharch_uarch.dir/branch_predictor.cc.o.d"
  "CMakeFiles/sharch_uarch.dir/mem_dep.cc.o"
  "CMakeFiles/sharch_uarch.dir/mem_dep.cc.o.d"
  "CMakeFiles/sharch_uarch.dir/rename.cc.o"
  "CMakeFiles/sharch_uarch.dir/rename.cc.o.d"
  "CMakeFiles/sharch_uarch.dir/structure_policy.cc.o"
  "CMakeFiles/sharch_uarch.dir/structure_policy.cc.o.d"
  "CMakeFiles/sharch_uarch.dir/structures.cc.o"
  "CMakeFiles/sharch_uarch.dir/structures.cc.o.d"
  "libsharch_uarch.a"
  "libsharch_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharch_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
