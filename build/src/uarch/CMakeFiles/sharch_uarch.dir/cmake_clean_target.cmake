file(REMOVE_RECURSE
  "libsharch_uarch.a"
)
