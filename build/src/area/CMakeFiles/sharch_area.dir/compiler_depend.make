# Empty compiler generated dependencies file for sharch_area.
# This may be replaced when dependencies are built.
