file(REMOVE_RECURSE
  "CMakeFiles/sharch_area.dir/area_model.cc.o"
  "CMakeFiles/sharch_area.dir/area_model.cc.o.d"
  "CMakeFiles/sharch_area.dir/cacti_lite.cc.o"
  "CMakeFiles/sharch_area.dir/cacti_lite.cc.o.d"
  "libsharch_area.a"
  "libsharch_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharch_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
