file(REMOVE_RECURSE
  "libsharch_area.a"
)
