
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/area/area_model.cc" "src/area/CMakeFiles/sharch_area.dir/area_model.cc.o" "gcc" "src/area/CMakeFiles/sharch_area.dir/area_model.cc.o.d"
  "/root/repo/src/area/cacti_lite.cc" "src/area/CMakeFiles/sharch_area.dir/cacti_lite.cc.o" "gcc" "src/area/CMakeFiles/sharch_area.dir/cacti_lite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sharch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/sharch_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
