file(REMOVE_RECURSE
  "libsharch_noc.a"
)
