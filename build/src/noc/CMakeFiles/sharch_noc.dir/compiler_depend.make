# Empty compiler generated dependencies file for sharch_noc.
# This may be replaced when dependencies are built.
