file(REMOVE_RECURSE
  "CMakeFiles/sharch_noc.dir/mesh.cc.o"
  "CMakeFiles/sharch_noc.dir/mesh.cc.o.d"
  "CMakeFiles/sharch_noc.dir/network.cc.o"
  "CMakeFiles/sharch_noc.dir/network.cc.o.d"
  "CMakeFiles/sharch_noc.dir/placement.cc.o"
  "CMakeFiles/sharch_noc.dir/placement.cc.o.d"
  "libsharch_noc.a"
  "libsharch_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharch_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
