file(REMOVE_RECURSE
  "CMakeFiles/sharch_trace.dir/generator.cc.o"
  "CMakeFiles/sharch_trace.dir/generator.cc.o.d"
  "CMakeFiles/sharch_trace.dir/instruction.cc.o"
  "CMakeFiles/sharch_trace.dir/instruction.cc.o.d"
  "CMakeFiles/sharch_trace.dir/profile.cc.o"
  "CMakeFiles/sharch_trace.dir/profile.cc.o.d"
  "CMakeFiles/sharch_trace.dir/trace_io.cc.o"
  "CMakeFiles/sharch_trace.dir/trace_io.cc.o.d"
  "libsharch_trace.a"
  "libsharch_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharch_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
