file(REMOVE_RECURSE
  "libsharch_trace.a"
)
