# Empty dependencies file for sharch_trace.
# This may be replaced when dependencies are built.
