file(REMOVE_RECURSE
  "libsharch_config.a"
)
