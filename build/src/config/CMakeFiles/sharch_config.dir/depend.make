# Empty dependencies file for sharch_config.
# This may be replaced when dependencies are built.
