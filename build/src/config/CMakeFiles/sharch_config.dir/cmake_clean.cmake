file(REMOVE_RECURSE
  "CMakeFiles/sharch_config.dir/sim_config.cc.o"
  "CMakeFiles/sharch_config.dir/sim_config.cc.o.d"
  "CMakeFiles/sharch_config.dir/xml.cc.o"
  "CMakeFiles/sharch_config.dir/xml.cc.o.d"
  "libsharch_config.a"
  "libsharch_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharch_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
