# Empty compiler generated dependencies file for sharch_stats.
# This may be replaced when dependencies are built.
