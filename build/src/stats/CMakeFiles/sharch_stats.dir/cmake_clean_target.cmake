file(REMOVE_RECURSE
  "libsharch_stats.a"
)
