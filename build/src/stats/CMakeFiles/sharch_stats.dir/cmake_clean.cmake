file(REMOVE_RECURSE
  "CMakeFiles/sharch_stats.dir/stats.cc.o"
  "CMakeFiles/sharch_stats.dir/stats.cc.o.d"
  "libsharch_stats.a"
  "libsharch_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharch_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
