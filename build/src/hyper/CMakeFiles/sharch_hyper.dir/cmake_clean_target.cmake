file(REMOVE_RECURSE
  "libsharch_hyper.a"
)
