# Empty compiler generated dependencies file for sharch_hyper.
# This may be replaced when dependencies are built.
