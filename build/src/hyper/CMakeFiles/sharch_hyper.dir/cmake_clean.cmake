file(REMOVE_RECURSE
  "CMakeFiles/sharch_hyper.dir/autotuner.cc.o"
  "CMakeFiles/sharch_hyper.dir/autotuner.cc.o.d"
  "CMakeFiles/sharch_hyper.dir/fabric_manager.cc.o"
  "CMakeFiles/sharch_hyper.dir/fabric_manager.cc.o.d"
  "CMakeFiles/sharch_hyper.dir/spot_market.cc.o"
  "CMakeFiles/sharch_hyper.dir/spot_market.cc.o.d"
  "libsharch_hyper.a"
  "libsharch_hyper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharch_hyper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
