# Empty compiler generated dependencies file for sharch_common.
# This may be replaced when dependencies are built.
