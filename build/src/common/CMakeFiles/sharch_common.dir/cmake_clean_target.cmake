file(REMOVE_RECURSE
  "libsharch_common.a"
)
