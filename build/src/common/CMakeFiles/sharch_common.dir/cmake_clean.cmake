file(REMOVE_RECURSE
  "CMakeFiles/sharch_common.dir/logging.cc.o"
  "CMakeFiles/sharch_common.dir/logging.cc.o.d"
  "CMakeFiles/sharch_common.dir/math_util.cc.o"
  "CMakeFiles/sharch_common.dir/math_util.cc.o.d"
  "CMakeFiles/sharch_common.dir/random.cc.o"
  "CMakeFiles/sharch_common.dir/random.cc.o.d"
  "CMakeFiles/sharch_common.dir/scheduling.cc.o"
  "CMakeFiles/sharch_common.dir/scheduling.cc.o.d"
  "libsharch_common.a"
  "libsharch_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
