file(REMOVE_RECURSE
  "libsharch_econ.a"
)
