# Empty compiler generated dependencies file for sharch_econ.
# This may be replaced when dependencies are built.
