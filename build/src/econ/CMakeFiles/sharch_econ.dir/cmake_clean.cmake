file(REMOVE_RECURSE
  "CMakeFiles/sharch_econ.dir/datacenter.cc.o"
  "CMakeFiles/sharch_econ.dir/datacenter.cc.o.d"
  "CMakeFiles/sharch_econ.dir/efficiency.cc.o"
  "CMakeFiles/sharch_econ.dir/efficiency.cc.o.d"
  "CMakeFiles/sharch_econ.dir/market.cc.o"
  "CMakeFiles/sharch_econ.dir/market.cc.o.d"
  "CMakeFiles/sharch_econ.dir/optimizer.cc.o"
  "CMakeFiles/sharch_econ.dir/optimizer.cc.o.d"
  "CMakeFiles/sharch_econ.dir/phases.cc.o"
  "CMakeFiles/sharch_econ.dir/phases.cc.o.d"
  "CMakeFiles/sharch_econ.dir/utility.cc.o"
  "CMakeFiles/sharch_econ.dir/utility.cc.o.d"
  "libsharch_econ.a"
  "libsharch_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharch_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
