# Empty dependencies file for iaas_market.
# This may be replaced when dependencies are built.
