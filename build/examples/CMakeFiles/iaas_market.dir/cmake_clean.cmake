file(REMOVE_RECURSE
  "CMakeFiles/iaas_market.dir/iaas_market.cpp.o"
  "CMakeFiles/iaas_market.dir/iaas_market.cpp.o.d"
  "iaas_market"
  "iaas_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iaas_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
