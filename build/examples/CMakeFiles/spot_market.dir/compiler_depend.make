# Empty compiler generated dependencies file for spot_market.
# This may be replaced when dependencies are built.
