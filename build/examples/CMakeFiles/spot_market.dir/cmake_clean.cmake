file(REMOVE_RECURSE
  "CMakeFiles/spot_market.dir/spot_market.cpp.o"
  "CMakeFiles/spot_market.dir/spot_market.cpp.o.d"
  "spot_market"
  "spot_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
